#include "sim/protocol_registry.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace bsub::sim {

namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string field_name(std::string_view protocol, std::string_view key) {
  return std::string(protocol) + "." + std::string(key);
}

}  // namespace

ProtocolSpec ProtocolSpec::parse(std::string_view spec) {
  ProtocolSpec out;
  const std::size_t colon = spec.find(':');
  out.name = std::string(spec.substr(0, colon));
  if (out.name.empty()) {
    throw util::ConfigError("protocol spec has an empty name", "protocol",
                            "spec must be name[:key=value,...]");
  }
  if (colon == std::string_view::npos) return out;

  std::string_view rest = spec.substr(colon + 1);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view item = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw util::ConfigError("malformed parameter '" + std::string(item) +
                                  "' in protocol spec '" + std::string(spec) +
                                  "'",
                              out.name, "parameters must be key=value");
    }
    const std::string_view key = item.substr(0, eq);
    for (const auto& [seen, _] : out.params) {
      if (iequals(seen, key)) {
        throw util::ConfigError("duplicate parameter '" + std::string(key) +
                                    "' in protocol spec '" + std::string(spec) +
                                    "'",
                                field_name(out.name, key),
                                "each key may appear once");
      }
    }
    out.params.emplace_back(std::string(key), std::string(item.substr(eq + 1)));
  }
  return out;
}

std::string ProtocolSpec::str() const {
  std::string out = name;
  for (std::size_t i = 0; i < params.size(); ++i) {
    out += i == 0 ? ':' : ',';
    out += params[i].first;
    out += '=';
    out += params[i].second;
  }
  return out;
}

ProtocolParams::ProtocolParams(const ProtocolSpec& spec)
    : name_(spec.name), params_(spec.params),
      consumed_(spec.params.size(), false) {}

const std::string* ProtocolParams::find(std::string_view key) {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (iequals(params_[i].first, key)) {
      consumed_[i] = true;
      return &params_[i].second;
    }
  }
  return nullptr;
}

bool ProtocolParams::get_bool(std::string_view key, bool fallback) {
  const std::string* v = find(key);
  if (v == nullptr) return fallback;
  if (*v == "1" || iequals(*v, "true") || iequals(*v, "on")) return true;
  if (*v == "0" || iequals(*v, "false") || iequals(*v, "off")) return false;
  throw util::ConfigError("parameter '" + std::string(key) + "' = '" + *v +
                              "' is not a boolean",
                          field_name(name_, key), "expected 0/1/true/false");
}

std::uint64_t ProtocolParams::get_u64(std::string_view key,
                                      std::uint64_t fallback,
                                      std::uint64_t min_value) {
  const std::string* v = find(key);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(v->c_str(), &end, 10);
  if (end == v->c_str() || *end != '\0' || errno == ERANGE ||
      v->front() == '-') {
    throw util::ConfigError("parameter '" + std::string(key) + "' = '" + *v +
                                "' is not an unsigned integer",
                            field_name(name_, key),
                            "expected a base-10 unsigned integer");
  }
  if (parsed < min_value) {
    throw util::ConfigError("parameter '" + std::string(key) + "' = '" + *v +
                                "' is below the accepted domain",
                            field_name(name_, key),
                            "value must be >= " + std::to_string(min_value));
  }
  return parsed;
}

std::uint32_t ProtocolParams::get_u32(std::string_view key,
                                      std::uint32_t fallback,
                                      std::uint32_t min_value) {
  const std::uint64_t v = get_u64(key, fallback, min_value);
  if (v > 0xFFFFFFFFull) {
    throw util::ConfigError("parameter '" + std::string(key) +
                                "' overflows 32 bits",
                            field_name(name_, key), "value must fit uint32");
  }
  return static_cast<std::uint32_t>(v);
}

double ProtocolParams::get_double(std::string_view key, double fallback,
                                  double min_value) {
  const std::string* v = find(key);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(v->c_str(), &end);
  if (end == v->c_str() || *end != '\0' || errno == ERANGE ||
      parsed != parsed || parsed - parsed != 0.0) {
    throw util::ConfigError("parameter '" + std::string(key) + "' = '" + *v +
                                "' is not a finite number",
                            field_name(name_, key),
                            "expected a finite decimal number");
  }
  if (parsed < min_value) {
    throw util::ConfigError("parameter '" + std::string(key) + "' = '" + *v +
                                "' is below the accepted domain",
                            field_name(name_, key),
                            "value must be >= " + std::to_string(min_value));
  }
  return parsed;
}

std::string ProtocolParams::get_string(std::string_view key,
                                       std::string_view fallback) {
  const std::string* v = find(key);
  return v == nullptr ? std::string(fallback) : *v;
}

void ProtocolParams::finish() const {
  std::string unknown;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (consumed_[i]) continue;
    if (!unknown.empty()) unknown += ", ";
    unknown += params_[i].first;
  }
  if (!unknown.empty()) {
    throw util::ConfigError("protocol '" + name_ +
                                "' does not accept parameter(s): " + unknown,
                            name_, "remove the unknown parameter(s)");
  }
}

void ProtocolParams::reject(std::string_view key,
                            std::string_view constraint) const {
  throw util::ConfigError("parameter '" + std::string(key) +
                              "' of protocol '" + name_ +
                              "' is outside the accepted domain",
                          field_name(name_, key), std::string(constraint));
}

void ProtocolRegistry::add(Entry entry) {
  auto check = [&](const std::string& spelling) {
    if (find(spelling) != nullptr) {
      throw util::ConfigError("protocol name '" + spelling +
                                  "' is already registered",
                              "protocol", "names and aliases must be unique");
    }
  };
  check(entry.name);
  for (const std::string& a : entry.aliases) check(a);
  entries_.push_back(std::move(entry));
}

const ProtocolRegistry::Entry* ProtocolRegistry::find(
    std::string_view name) const {
  for (const Entry& e : entries_) {
    if (iequals(e.name, name)) return &e;
    for (const std::string& a : e.aliases) {
      if (iequals(a, name)) return &e;
    }
  }
  return nullptr;
}

std::unique_ptr<Protocol> ProtocolRegistry::make(std::string_view spec) const {
  return make(ProtocolSpec::parse(spec));
}

std::unique_ptr<Protocol> ProtocolRegistry::make(
    const ProtocolSpec& spec) const {
  const Entry* entry = find(spec.name);
  if (entry == nullptr) {
    throw util::ConfigError("unknown protocol '" + spec.name + "'", "protocol",
                            "registered protocols: " + names());
  }
  ProtocolParams params(spec);
  std::unique_ptr<Protocol> protocol = entry->factory(params);
  params.finish();
  return protocol;
}

std::string ProtocolRegistry::names() const {
  std::string out;
  for (const Entry& e : entries_) {
    if (!out.empty()) out += ", ";
    out += e.name;
  }
  return out;
}

}  // namespace bsub::sim
