// Name-keyed protocol factory: one table enumerating every routing
// implementation behind the sim::Protocol interface, so a protocol is
// selected at runtime by spec string instead of wired ad hoc at each call
// site (simulator runs, the trace runner, the bsub_node daemon, the scale
// CLI, and the matrix harness all resolve protocols here).
//
// A spec is `name` or `name:key=value[,key=value...]` — e.g. "push",
// "spray:copies=8", "bsub:df=0.5,merge=a". Names and parameter keys are
// case-insensitive on lookup; the registered key is the protocol's
// canonical `Protocol::name()` string (so a constructed protocol always
// reports the key it was registered under). Every failure — unknown name,
// unknown or duplicate parameter, out-of-domain value — is a typed
// util::ConfigError naming the offending field, never a silent default.
//
// The registry itself is a pure mechanism with no protocol dependencies;
// the concrete tables are populated by the layers that own the
// implementations (routing::register_baseline_protocols,
// core::register_bsub_protocol) and aggregated by
// core::make_protocol_registry().
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/protocol.h"
#include "util/errors.h"

namespace bsub::sim {

/// A parsed protocol spec: the protocol name plus its key=value parameters
/// in spec order. Parsing is purely syntactic — name resolution and value
/// validation happen at construction time against the registry entry.
struct ProtocolSpec {
  std::string name;
  std::vector<std::pair<std::string, std::string>> params;

  /// Parses `name[:key=value[,key=value...]]`. Throws util::ConfigError on
  /// an empty name, a parameter without '=', an empty key, or a key given
  /// twice (keys compare case-insensitively).
  static ProtocolSpec parse(std::string_view spec);

  /// Canonical round-trip form: `name:key=value,...` (or just `name`).
  std::string str() const;
};

/// Typed accessor over a spec's parameters, handed to factories. Each
/// getter consumes its key; finish() rejects any key the factory never
/// asked about, so a typo'd parameter fails loudly instead of silently
/// running the default configuration.
class ProtocolParams {
 public:
  explicit ProtocolParams(const ProtocolSpec& spec);

  const std::string& protocol() const { return name_; }

  /// Typed getters; each returns `fallback` when the key is absent and
  /// throws util::ConfigError (field "<protocol>.<key>") when the value
  /// does not parse or violates the stated domain.
  bool get_bool(std::string_view key, bool fallback);
  std::uint32_t get_u32(std::string_view key, std::uint32_t fallback,
                        std::uint32_t min_value = 0);
  std::uint64_t get_u64(std::string_view key, std::uint64_t fallback,
                        std::uint64_t min_value = 0);
  /// Finite double; `min_value` is inclusive.
  double get_double(std::string_view key, double fallback, double min_value);
  std::string get_string(std::string_view key, std::string_view fallback);

  /// Throws util::ConfigError listing every parameter no getter consumed.
  void finish() const;

  /// Error helper for factory-side domain checks (e.g. an enum value the
  /// getters cannot express): a ConfigError on field "<protocol>.<key>".
  [[noreturn]] void reject(std::string_view key,
                           std::string_view constraint) const;

 private:
  const std::string* find(std::string_view key);

  std::string name_;
  std::vector<std::pair<std::string, std::string>> params_;
  std::vector<bool> consumed_;
};

/// The name-keyed factory table.
class ProtocolRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Protocol>(ProtocolParams&)>;

  struct Entry {
    /// Canonical key; must equal what the constructed protocol's name()
    /// reports (the round-trip suite asserts this for every entry).
    std::string name;
    /// Extra lookup spellings (e.g. "bsub" for "B-SUB").
    std::vector<std::string> aliases;
    /// One-line human description for --help output and reports.
    std::string summary;
    Factory factory;
  };

  /// Registers an entry. Throws util::ConfigError if the name or an alias
  /// collides with an already-registered spelling.
  void add(Entry entry);

  /// Looks up a name or alias (case-insensitive); nullptr when absent.
  const Entry* find(std::string_view name) const;

  /// Parses `spec`, resolves the entry, and constructs the protocol.
  /// Throws util::ConfigError for an unknown name (the message lists every
  /// registered name) or any parameter failure.
  std::unique_ptr<Protocol> make(std::string_view spec) const;
  std::unique_ptr<Protocol> make(const ProtocolSpec& spec) const;

  /// Entries in registration order.
  const std::vector<Entry>& entries() const { return entries_; }

  /// Comma-separated canonical names, for error messages and usage text.
  std::string names() const;

 private:
  std::vector<Entry> entries_;
};

}  // namespace bsub::sim
