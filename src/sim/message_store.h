// Per-node message buffer shared by all protocols.
//
// Ordered by message id (== creation order) so that iteration — and
// therefore transmission order under bandwidth pressure — is deterministic.
#pragma once

#include <map>

#include "util/time.h"
#include "workload/message.h"

namespace bsub::sim {

class MessageStore {
 public:
  /// Adds a copy; returns false if the id is already buffered.
  bool add(const workload::Message& msg) {
    return messages_.emplace(msg.id, msg).second;
  }

  bool contains(workload::MessageId id) const {
    return messages_.contains(id);
  }

  bool remove(workload::MessageId id) { return messages_.erase(id) > 0; }

  /// Pointer to the buffered message, or nullptr if absent.
  const workload::Message* find(workload::MessageId id) const {
    auto it = messages_.find(id);
    return it == messages_.end() ? nullptr : &it->second;
  }

  /// Drops messages whose TTL has elapsed at `now`.
  void purge_expired(util::Time now) {
    std::erase_if(messages_,
                  [now](const auto& kv) { return kv.second.expired_at(now); });
  }

  std::size_t size() const { return messages_.size(); }
  bool empty() const { return messages_.empty(); }
  void clear() { messages_.clear(); }

  /// Iteration in id (creation) order.
  auto begin() const { return messages_.begin(); }
  auto end() const { return messages_.end(); }

 private:
  std::map<workload::MessageId, workload::Message> messages_;
};

}  // namespace bsub::sim
