// Per-node message buffer shared by all protocols.
//
// A sorted flat vector of (id, shared payload) entries: iteration — and
// therefore transmission order under bandwidth pressure — is deterministic
// (id == creation order), and lookups are binary searches over a contiguous
// array. Payloads are immutable and refcounted, so copying a message between
// nodes (pickup, custody transfer, spraying) shares one body instead of
// deep-copying it per holder.
//
// TTL purging rides the ExpiryIndex fast path: `purge_expired` is O(1) when
// nothing registered has expired, and touches only expired entries
// otherwise. `purge_expired_scan` retains the naive full-scan reference for
// differential testing; both report how many messages were dropped.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/expiry_index.h"
#include "util/time.h"
#include "workload/message.h"

namespace bsub::sim {

/// Shared immutable message payload.
using MessageRef = std::shared_ptr<const workload::Message>;

/// Wraps a workload-owned message in a non-owning ref. The workload's
/// message table is materialized up front and outlives every run, so
/// protocols can share its entries without a copy or a refcount allocation.
inline MessageRef borrow_message(const workload::Message& msg) {
  return MessageRef(MessageRef{}, &msg);
}

class MessageStore {
 public:
  struct Entry {
    workload::MessageId id;
    MessageRef msg;
  };

  /// Hot-path accounting, aggregated into metrics::HotPathStats at run end.
  struct Stats {
    std::uint64_t shared_adds = 0;    ///< payload copies avoided
    std::uint64_t copied_adds = 0;    ///< payloads deep-copied on admission
    std::uint64_t purges_skipped = 0; ///< O(1) nothing-due purge calls
    std::uint64_t purges_scanned = 0; ///< purge calls that did real work
  };

  /// Adds a copy; returns false if the id is already buffered.
  bool add(const workload::Message& msg) {
    return insert(msg.id, std::make_shared<const workload::Message>(msg),
                  /*shared=*/false);
  }

  /// Adds a shared payload (no body copy); returns false on duplicate id.
  bool add(MessageRef msg) {
    const workload::MessageId id = msg->id;
    return insert(id, std::move(msg), /*shared=*/true);
  }

  bool contains(workload::MessageId id) const {
    auto it = lower_bound(id);
    return it != entries_.end() && it->id == id;
  }

  bool remove(workload::MessageId id) {
    auto it = lower_bound(id);
    if (it == entries_.end() || it->id != id) return false;
    entries_.erase(it);  // the expiry-heap entry goes stale; skipped lazily
    return true;
  }

  /// Pointer to the buffered message, or nullptr if absent.
  const workload::Message* find(workload::MessageId id) const {
    auto it = lower_bound(id);
    return it == entries_.end() || it->id != id ? nullptr : it->msg.get();
  }

  /// Shared handle to the buffered payload (empty if absent); handing this
  /// to another store's add() moves custody without copying the body.
  MessageRef find_ref(workload::MessageId id) const {
    auto it = lower_bound(id);
    return it == entries_.end() || it->id != id ? MessageRef{} : it->msg;
  }

  /// Drops messages whose TTL has elapsed at `now`; returns how many.
  /// O(1) when the expiry index proves nothing expired since the last call.
  std::size_t purge_expired(util::Time now) {
    if (!expiry_.due(now)) {
      ++stats_.purges_skipped;
      return 0;
    }
    ++stats_.purges_scanned;
    bool any_live = false;
    expiry_.pop_due(now, [&](workload::MessageId id) {
      auto it = lower_bound(id);
      any_live |= it != entries_.end() && it->id == id;
    });
    if (!any_live) return 0;  // only stale entries (removed earlier) were due
    const std::size_t before = entries_.size();
    std::erase_if(entries_,
                  [now](const Entry& e) { return e.msg->expired_at(now); });
    return before - entries_.size();
  }

  /// Naive full-scan purge — the retained reference the differential test
  /// runs against the fast path. Identical observable semantics.
  std::size_t purge_expired_scan(util::Time now) {
    ++stats_.purges_scanned;
    const std::size_t before = entries_.size();
    std::erase_if(entries_,
                  [now](const Entry& e) { return e.msg->expired_at(now); });
    return before - entries_.size();
  }

  /// Earliest (possibly stale) registered expiry; kTimeMax when empty.
  util::Time next_expiry() const { return expiry_.next_due(); }

  const Stats& stats() const { return stats_; }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void clear() {
    entries_.clear();
    expiry_.clear();
  }

  /// Iteration in id (creation) order; yields Entry{id, msg}.
  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }

 private:
  std::vector<Entry>::const_iterator lower_bound(workload::MessageId id) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), id,
        [](const Entry& e, workload::MessageId v) { return e.id < v; });
  }
  std::vector<Entry>::iterator lower_bound(workload::MessageId id) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), id,
        [](const Entry& e, workload::MessageId v) { return e.id < v; });
  }

  bool insert(workload::MessageId id, MessageRef ref, bool shared) {
    auto it = lower_bound(id);
    if (it != entries_.end() && it->id == id) return false;
    expiry_.add(ref->expiry(), id);
    entries_.insert(it, Entry{id, std::move(ref)});
    ++(shared ? stats_.shared_adds : stats_.copied_adds);
    return true;
  }

  std::vector<Entry> entries_;
  ExpiryIndex expiry_;
  Stats stats_;
};

}  // namespace bsub::sim
