// Protocol strategy interface for the trace-driven simulator.
//
// A protocol owns all per-node state (buffers, filters, roles) and reacts to
// the two event kinds the simulator replays: message creation at a producer
// and pairwise contacts. Every transmission must pass through the contact's
// Link so that the byte budget is honored, and deliveries/forwardings must
// be reported to the metrics Collector.
#pragma once

#include "metrics/collector.h"
#include "sim/link.h"
#include "trace/contact.h"
#include "trace/trace.h"
#include "util/time.h"
#include "workload/workload.h"

namespace bsub::sim {

/// Static facts about the scenario, known before replay. This is all a
/// protocol may assume up front: streamed scenarios never materialize a
/// ContactTrace, so per-node state is sized from here.
struct ScenarioInfo {
  std::size_t node_count = 0;
};

class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Called once before replay with the scenario's static facts.
  virtual void on_start(const ScenarioInfo& scenario,
                        const workload::Workload& workload,
                        metrics::Collector& collector) = 0;

  /// Convenience for materialized scenarios (tests, small experiments).
  /// Derived classes that override the ScenarioInfo form should pull this
  /// in with `using sim::Protocol::on_start;`.
  void on_start(const trace::ContactTrace& trace,
                const workload::Workload& workload,
                metrics::Collector& collector) {
    on_start(ScenarioInfo{trace.node_count()}, workload, collector);
  }

  /// A producer created a message at `now` (== msg.created).
  virtual void on_message_created(const workload::Message& msg,
                                  util::Time now) = 0;

  /// Nodes `a` and `b` are in contact during [now, now + link budget's
  /// duration). All transfers go through `link`.
  virtual void on_contact(trace::NodeId a, trace::NodeId b, util::Time now,
                          util::Time duration, Link& link) = 0;

  /// Called once after the last event.
  virtual void on_end(util::Time /*now*/) {}

  /// Opt-in to the conflict-batch parallel executor: return true iff
  /// concurrent on_contact/on_message_created calls for *node-disjoint*
  /// events are safe — all mutable state is per-node, and any global
  /// tallies are commutative (relaxed atomics) or reduced canonically.
  /// Defaults to false so external Protocol subclasses (e.g. test doubles
  /// that log a global event order) keep the serial path untouched.
  virtual bool parallel_contacts_safe() const { return false; }

  /// Human-readable protocol name for reports.
  virtual const char* name() const = 0;
};

}  // namespace bsub::sim
