// Min-heap expiry index: the contact-loop fast path for TTL housekeeping.
//
// Every buffered message registers its (expiry, id) pair; a purge first asks
// `due(now)` — an O(1) peek at the heap top — and does nothing at all when
// no registered expiry has passed, which is the overwhelming majority of
// contacts. When something is due, `pop_due` yields exactly the expired
// entries, so a purge touches only messages that actually expired since the
// node's last contact.
//
// Entries are validated lazily: a message that left its buffer early
// (custody transfer, copy-budget exhaustion) leaves a stale heap entry
// behind, which the owner simply skips when it pops (the id is no longer
// present, or not expired under the recorded time). This keeps removal O(1)
// and preserves the exact observable purge semantics of a full scan.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "util/time.h"
#include "workload/message.h"

namespace bsub::sim {

class ExpiryIndex {
 public:
  /// Registers a buffered message's expiry time.
  void add(util::Time expiry, workload::MessageId id) {
    heap_.emplace_back(expiry, id);
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  /// Earliest registered expiry (possibly stale), or kTimeMax when empty.
  util::Time next_due() const {
    return heap_.empty() ? util::kTimeMax : heap_.front().first;
  }

  /// True when some registered entry has expired at `now` — the only case a
  /// purge has any work to do. Expiry is inclusive (`now >= expiry`),
  /// matching Message::expired_at.
  bool due(util::Time now) const { return now >= next_due(); }

  /// Pops every entry due at `now`, invoking fn(id) for each. The callee
  /// must validate lazily: the id may already be gone from the buffer.
  template <class Fn>
  void pop_due(util::Time now, Fn&& fn) {
    while (!heap_.empty() && heap_.front().first <= now) {
      const workload::MessageId id = heap_.front().second;
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      heap_.pop_back();
      fn(id);
    }
  }

  /// Discards every due entry without visiting it.
  void drop_due(util::Time now) {
    pop_due(now, [](workload::MessageId) {});
  }

  void clear() { heap_.clear(); }
  std::size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }

 private:
  /// Min-heap order on expiry, id-ascending among equal expiries so pop
  /// order is deterministic.
  struct Later {
    bool operator()(const std::pair<util::Time, workload::MessageId>& a,
                    const std::pair<util::Time, workload::MessageId>& b) const {
      return a.first > b.first || (a.first == b.first && a.second > b.second);
    }
  };

  std::vector<std::pair<util::Time, workload::MessageId>> heap_;
};

}  // namespace bsub::sim
