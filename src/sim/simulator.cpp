#include "sim/simulator.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/event_stream.h"

namespace bsub::sim {

metrics::RunResults Simulator::run(trace::ContactStream& contacts,
                                   const workload::Workload& workload,
                                   Protocol& protocol) {
  metrics::Collector collector;
  collector.set_expected(workload.messages().size(),
                         workload.expected_deliveries());

  const std::vector<workload::Message>& messages = workload.messages();

  // Node-id space for the conflict scheduler: producers are scenario nodes,
  // but stay defensive against workloads that reference ids past it.
  std::size_t node_count = contacts.node_count();
  for (const workload::Message& m : messages) {
    node_count = std::max(node_count, static_cast<std::size_t>(m.producer) + 1);
  }
  collector.reserve_nodes(node_count);

  protocol.on_start(ScenarioInfo{contacts.node_count()}, workload, collector);

  const std::size_t threads =
      config_.threads != 0 ? config_.threads : util::default_thread_count();

  last_run_stats_ = ParallelRunStats{};
  ScenarioEventStream events(contacts, workload);
  util::Time now = 0;

  if (threads <= 1 || !protocol.parallel_contacts_safe()) {
    // Serial merge replay — the reference order every parallel schedule
    // must reproduce per node.
    last_run_stats_.threads_used = 1;
    ScenarioEvent e;
    while (events.next(e)) {
      ++last_run_stats_.events;
      now = e.time(messages);
      if (e.is_message) {
        protocol.on_message_created(messages[e.message_index], now);
      } else {
        Link link(e.contact.duration(), config_.bandwidth_bytes_per_second);
        protocol.on_contact(e.contact.a, e.contact.b, now,
                            e.contact.duration(), link);
      }
    }
    protocol.on_end(now);
    return collector.results();
  }

  // Streamed parallel replay: stage one scheduling window of events at a
  // time; the executor never sees more than the window. `staged` is reused
  // across windows (windows are strictly sequential).
  ParallelRunConfig pcfg;
  pcfg.threads = threads;
  pcfg.window_events = config_.window_events;
  pcfg.min_batch_fanout = config_.min_batch_fanout;

  std::vector<ScenarioEvent> staged;
  const double bandwidth = config_.bandwidth_bytes_per_second;
  last_run_stats_ = run_windowed_parallel(
      node_count,
      [&](std::span<EventNodes> slots) {
        staged.resize(slots.size());
        std::size_t n = 0;
        while (n < slots.size() && events.next(staged[n])) {
          slots[n] = staged[n].nodes(messages);
          ++n;
        }
        if (n > 0) now = staged[n - 1].time(messages);
        return n;
      },
      [&](std::size_t j) {
        const ScenarioEvent& e = staged[j];
        if (e.is_message) {
          const workload::Message& m = messages[e.message_index];
          protocol.on_message_created(m, m.created);
        } else {
          Link link(e.contact.duration(), bandwidth);
          protocol.on_contact(e.contact.a, e.contact.b, e.contact.start,
                              e.contact.duration(), link);
        }
      },
      pcfg);
  // An empty scenario never engaged the pool; report it as the serial run
  // it effectively was (matching the materialized executor's stats).
  if (last_run_stats_.events == 0) last_run_stats_.threads_used = 1;

  protocol.on_end(now);
  return collector.results();
}

}  // namespace bsub::sim
