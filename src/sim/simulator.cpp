#include "sim/simulator.h"

namespace bsub::sim {

metrics::RunResults Simulator::run(const trace::ContactTrace& trace,
                                   const workload::Workload& workload,
                                   Protocol& protocol) {
  metrics::Collector collector;
  collector.set_expected(workload.messages().size(),
                         workload.expected_deliveries());
  protocol.on_start(trace, workload, collector);

  const auto& contacts = trace.contacts();
  const auto& messages = workload.messages();
  std::size_t ci = 0, mi = 0;
  util::Time now = trace.start_time();

  // Two-way merge of the contact stream and the message-creation stream;
  // creations at time t are visible to a contact starting at the same t.
  while (ci < contacts.size() || mi < messages.size()) {
    const bool take_message =
        mi < messages.size() &&
        (ci >= contacts.size() || messages[mi].created <= contacts[ci].start);
    if (take_message) {
      now = messages[mi].created;
      protocol.on_message_created(messages[mi], now);
      ++mi;
    } else {
      const trace::Contact& c = contacts[ci];
      now = c.start;
      Link link(c.duration(), config_.bandwidth_bytes_per_second);
      protocol.on_contact(c.a, c.b, now, c.duration(), link);
      ++ci;
    }
  }
  protocol.on_end(now);
  return collector.results();
}

}  // namespace bsub::sim
