#include "sim/simulator.h"

#include <algorithm>
#include <cstdint>

namespace bsub::sim {

namespace {

/// One entry of the merged event stream: a message creation (by workload
/// index) or a contact (by trace index). Kept as a tagged index rather than
/// a variant so the merged stream is 8 bytes/event.
struct MergedEvent {
  std::uint32_t index;
  bool is_message;
};

/// Merges creations and contacts with the serial loop's exact tie rule:
/// a creation at time t is visible to a contact starting at the same t.
std::vector<MergedEvent> merge_events(
    const std::vector<trace::Contact>& contacts,
    const std::vector<workload::Message>& messages) {
  std::vector<MergedEvent> events;
  events.reserve(contacts.size() + messages.size());
  std::size_t ci = 0, mi = 0;
  while (ci < contacts.size() || mi < messages.size()) {
    const bool take_message =
        mi < messages.size() &&
        (ci >= contacts.size() || messages[mi].created <= contacts[ci].start);
    if (take_message) {
      events.push_back({static_cast<std::uint32_t>(mi), true});
      ++mi;
    } else {
      events.push_back({static_cast<std::uint32_t>(ci), false});
      ++ci;
    }
  }
  return events;
}

}  // namespace

metrics::RunResults Simulator::run(const trace::ContactTrace& trace,
                                   const workload::Workload& workload,
                                   Protocol& protocol) {
  metrics::Collector collector;
  collector.set_expected(workload.messages().size(),
                         workload.expected_deliveries());

  const auto& contacts = trace.contacts();
  const auto& messages = workload.messages();

  // Node-id space for the conflict scheduler: producers are trace nodes,
  // but stay defensive against workloads that reference ids past the trace.
  std::size_t node_count = trace.node_count();
  for (const workload::Message& m : messages) {
    node_count = std::max(node_count, static_cast<std::size_t>(m.producer) + 1);
  }
  collector.reserve_nodes(node_count);

  protocol.on_start(trace, workload, collector);

  const std::size_t threads =
      config_.threads != 0 ? config_.threads : util::default_thread_count();

  last_run_stats_ = ParallelRunStats{};
  util::Time now = trace.start_time();

  if (threads <= 1 || !protocol.parallel_contacts_safe()) {
    // Serial two-way merge — the reference order every parallel schedule
    // must reproduce per node.
    last_run_stats_.threads_used = 1;
    std::size_t ci = 0, mi = 0;
    while (ci < contacts.size() || mi < messages.size()) {
      const bool take_message =
          mi < messages.size() &&
          (ci >= contacts.size() ||
           messages[mi].created <= contacts[ci].start);
      if (take_message) {
        now = messages[mi].created;
        protocol.on_message_created(messages[mi], now);
        ++mi;
      } else {
        const trace::Contact& c = contacts[ci];
        now = c.start;
        Link link(c.duration(), config_.bandwidth_bytes_per_second);
        protocol.on_contact(c.a, c.b, now, c.duration(), link);
        ++ci;
      }
      last_run_stats_.events = ci + mi;
    }
    protocol.on_end(now);
    return collector.results();
  }

  const std::vector<MergedEvent> events = merge_events(contacts, messages);
  std::vector<EventNodes> endpoints(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].is_message) {
      endpoints[i] = {messages[events[i].index].producer, EventNodes::kNoNode};
    } else {
      const trace::Contact& c = contacts[events[i].index];
      endpoints[i] = {c.a, c.b};
    }
  }

  ParallelRunConfig pcfg;
  pcfg.threads = threads;
  pcfg.window_events = config_.window_events;
  pcfg.min_batch_fanout = config_.min_batch_fanout;

  const double bandwidth = config_.bandwidth_bytes_per_second;
  last_run_stats_ = run_conflict_parallel(
      events.size(), node_count, endpoints,
      [&](std::size_t i) {
        const MergedEvent& e = events[i];
        if (e.is_message) {
          const workload::Message& m = messages[e.index];
          protocol.on_message_created(m, m.created);
        } else {
          const trace::Contact& c = contacts[e.index];
          Link link(c.duration(), bandwidth);
          protocol.on_contact(c.a, c.b, c.start, c.duration(), link);
        }
      },
      pcfg);

  if (!events.empty()) {
    const MergedEvent& last = events.back();
    now = last.is_message ? messages[last.index].created
                          : contacts[last.index].start;
  }
  protocol.on_end(now);
  return collector.results();
}

}  // namespace bsub::sim
