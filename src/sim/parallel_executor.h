// Windowed conflict-batch executor: runs a trace-ordered event stream
// across a thread pool while staying bit-identical to serial execution.
//
// Pipeline per window of `window_events` events:
//   1. ConflictScheduler partitions the window into node-disjoint batches
//      (see conflict_schedule.h for the order-preservation argument);
//   2. each batch runs either inline (small batches — the pool handoff
//      costs more than the work) or chunked across the pool's workers,
//      with wait_idle() as the barrier before the next batch.
//
// Determinism: a node's events execute in trace order (conflicting events
// occupy strictly increasing batches; batches and windows are sequential),
// so all per-node state evolves exactly as in a serial run. Cross-node
// effects must be commutative (relaxed atomic tallies) or per-node logs
// reduced in a canonical order — that is the callee's contract, enforced
// by Protocol::parallel_contacts_safe() at the driver layer.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/conflict_schedule.h"
#include "util/parallel.h"

namespace bsub::sim {

/// Knobs for the windowed conflict-batch executor.
struct ParallelRunConfig {
  /// Worker count; 0 = util::default_thread_count() (honors BSUB_THREADS).
  std::size_t threads = 0;
  /// Events per scheduling window. Larger windows find more parallelism
  /// (batches grow toward node_count/2 events) but delay nothing — windows
  /// are a scheduling granularity, not a semantic boundary.
  std::size_t window_events = 4096;
  /// Batches with fewer than `min_batch_fanout` events per worker run
  /// inline on the calling thread; the pool handoff would dominate.
  std::size_t min_batch_fanout = 4;
};

/// Execution-shape report for one run; feeds the bench JSON so perf
/// trajectories stay apples-to-apples across machines and PRs.
struct ParallelRunStats {
  std::size_t threads_used = 0;
  std::uint64_t events = 0;
  std::uint64_t windows = 0;
  std::uint64_t batches = 0;
  std::uint64_t inline_batches = 0;    ///< ran on the calling thread
  std::uint64_t parallel_batches = 0;  ///< fanned out to the pool
  std::uint64_t max_batch = 0;         ///< largest batch seen
  /// batch_size_log2[k] counts batches with floor(log2(size)) == k.
  std::vector<std::uint64_t> batch_size_log2;

  void note_batch(std::size_t size) {
    ++batches;
    max_batch = std::max<std::uint64_t>(max_batch, size);
    std::size_t bucket = 0;
    for (std::size_t s = size; s > 1; s >>= 1) ++bucket;
    if (batch_size_log2.size() <= bucket) batch_size_log2.resize(bucket + 1);
    ++batch_size_log2[bucket];
  }
};

/// Streaming windowed executor: the event sequence is produced one window
/// at a time by `fill` instead of being materialized up front, so a run
/// holds at most `window_events` events in flight — the ring that makes
/// contact-count-independent memory possible.
///
/// Contract:
///   - `fill(slots)` stages the next up-to-slots.size() events, writing one
///     EventNodes per event into `slots[0..n)` and returning n; 0 means the
///     stream is exhausted. Short windows mid-stream are allowed. The
///     caller typically stages matching per-event payloads in its own
///     parallel buffer.
///   - `exec(j)` executes staged event j (window-local, in [0, n)) of the
///     most recent fill. Within a window, `exec` must tolerate concurrent
///     invocation for events touching disjoint nodes; windows themselves
///     are strictly sequential, so `fill` may reuse its staging buffers.
///
/// Determinism matches run_conflict_parallel: per-node order is preserved
/// inside each window by the conflict schedule and across windows by
/// sequencing, so a streamed run is bit-identical to a serial run over the
/// same event sequence.
template <class Fill, class Exec>
ParallelRunStats run_windowed_parallel(std::size_t node_count, Fill&& fill,
                                       Exec&& exec,
                                       const ParallelRunConfig& cfg = {}) {
  ParallelRunStats stats;
  const std::size_t threads =
      cfg.threads != 0 ? cfg.threads : util::default_thread_count();
  const std::size_t window =
      cfg.window_events != 0 ? cfg.window_events : 4096;
  std::vector<EventNodes> endpoints(window);

  if (threads <= 1) {
    // Serial degenerates to fill-then-run, window by window: same order,
    // no scheduling overhead, and no windows counted (matching the serial
    // path of run_conflict_parallel).
    stats.threads_used = 1;
    for (;;) {
      const std::size_t count = fill(std::span<EventNodes>(endpoints));
      if (count == 0) break;
      stats.events += count;
      for (std::size_t j = 0; j < count; ++j) exec(j);
    }
    return stats;
  }

  stats.threads_used = threads;
  util::ThreadPool pool(threads);
  ConflictScheduler scheduler(node_count);
  ConflictSchedule schedule;

  for (;;) {
    const std::size_t count = fill(std::span<EventNodes>(endpoints));
    if (count == 0) break;
    stats.events += count;
    ++stats.windows;
    scheduler.schedule(
        std::span<const EventNodes>(endpoints.data(), count), schedule);

    for (std::size_t k = 0; k < schedule.batch_count(); ++k) {
      const std::span<const std::uint32_t> batch = schedule.batch(k);
      stats.note_batch(batch.size());
      if (batch.size() < cfg.min_batch_fanout * threads) {
        ++stats.inline_batches;
        for (std::uint32_t local : batch) exec(local);
        continue;
      }
      ++stats.parallel_batches;
      const std::size_t chunk = (batch.size() + threads - 1) / threads;
      for (std::size_t t = 0; t < threads; ++t) {
        const std::size_t lo = t * chunk;
        if (lo >= batch.size()) break;
        const std::size_t hi = std::min(lo + chunk, batch.size());
        pool.submit([&, lo, hi] {
          for (std::size_t j = lo; j < hi; ++j) exec(batch[j]);
        });
      }
      pool.wait_idle();  // barrier: conflicting events wait here
    }
  }
  return stats;
}

/// Runs `exec(event_index)` for every index in [0, event_count), respecting
/// per-node trace order as derived from `endpoints` (one EventNodes per
/// event, same indexing). `exec` must be invocable concurrently for events
/// in the same batch — i.e. events touching disjoint nodes.
///
/// Materialized front-end to run_windowed_parallel: windows are carved out
/// of the pre-built endpoints span and window-local indices mapped back to
/// global ones. One ThreadPool lives for the whole run; batches are chunked
/// contiguously so each worker gets one job per batch, keeping the
/// per-batch overhead at one handoff + one barrier.
template <class Exec>
ParallelRunStats run_conflict_parallel(std::size_t event_count,
                                       std::size_t node_count,
                                       std::span<const EventNodes> endpoints,
                                       Exec&& exec,
                                       const ParallelRunConfig& cfg = {}) {
  const std::size_t threads =
      cfg.threads != 0 ? cfg.threads : util::default_thread_count();

  if (threads <= 1 || event_count == 0) {
    // Serial degenerates to the plain loop: same order, zero overhead.
    ParallelRunStats stats;
    stats.events = event_count;
    stats.threads_used = 1;
    for (std::size_t i = 0; i < event_count; ++i) exec(i);
    return stats;
  }

  // `base` is the global index of the current window's first event. fill
  // runs strictly before that window's execs and windows are sequential,
  // so the mapping is race-free.
  std::size_t base = 0;
  std::size_t next = 0;
  auto fill = [&](std::span<EventNodes> slots) {
    base = next;
    const std::size_t n = std::min(slots.size(), event_count - next);
    std::copy_n(endpoints.begin() + static_cast<std::ptrdiff_t>(next), n,
                slots.begin());
    next += n;
    return n;
  };
  return run_windowed_parallel(
      node_count, fill, [&](std::size_t local) { exec(base + local); }, cfg);
}

}  // namespace bsub::sim
