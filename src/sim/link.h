// A contact-scoped radio link with a finite byte budget.
//
// The paper models Bluetooth at a 1 Mbps peak but assumes an effective
// 250 Kbps; a contact of duration d can move at most d * rate bytes in both
// directions combined. Protocols must push every transmission through
// try_send so that bandwidth contention is honored.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/time.h"

namespace bsub::sim {

/// Effective Bluetooth throughput the paper assumes: 250 Kbps.
inline constexpr double kDefaultBandwidthBytesPerSecond = 250'000.0 / 8.0;

class Link {
 public:
  Link(util::Time duration, double bytes_per_second)
      : budget_(static_cast<std::uint64_t>(
            util::to_seconds(duration) * bytes_per_second)) {}

  /// Consumes `bytes` of budget. Returns false (consuming nothing) when the
  /// remaining budget is insufficient — the transfer does not happen.
  bool try_send(std::size_t bytes) {
    if (bytes > budget_ - used_) return false;
    used_ += bytes;
    return true;
  }

  std::uint64_t budget_bytes() const { return budget_; }
  std::uint64_t used_bytes() const { return used_; }
  std::uint64_t remaining_bytes() const { return budget_ - used_; }

 private:
  std::uint64_t budget_;
  std::uint64_t used_ = 0;
};

}  // namespace bsub::sim
