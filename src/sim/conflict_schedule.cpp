#include "sim/conflict_schedule.h"

#include <algorithm>
#include <cassert>

namespace bsub::sim {

ConflictScheduler::ConflictScheduler(std::size_t node_count)
    : last_batch_(node_count, 0) {}

ConflictSchedule ConflictScheduler::schedule(
    std::span<const EventNodes> events) {
  ConflictSchedule out;
  schedule(events, out);
  return out;
}

void ConflictScheduler::schedule(std::span<const EventNodes> events,
                                 ConflictSchedule& out) {
  const std::size_t n = events.size();
  out.order.clear();
  out.offsets.clear();
  if (n == 0) {
    out.offsets.push_back(0);
    return;
  }

  // Epoch trick: bumping stamp_base_ past every stamp written last window
  // invalidates the whole table without touching it. Stored stamps are
  // stamp_base_ + batch, so advancing by (previous batch count + 1) suffices;
  // we conservatively advance by n + 1.
  stamp_base_ += n + 1;

  batch_of_.resize(n);
  counts_.clear();

  std::uint32_t max_batch = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const EventNodes& e = events[i];
    std::uint64_t prev = 0;
    if (e.a != EventNodes::kNoNode) {
      assert(e.a < last_batch_.size());
      prev = std::max(prev, last_batch_[e.a]);
    }
    if (e.b != EventNodes::kNoNode) {
      assert(e.b < last_batch_.size());
      prev = std::max(prev, last_batch_[e.b]);
    }
    // Stamps are stamp_base_ + batch; anything below stamp_base_ is stale
    // (a previous window) and means "no prior conflict" -> batch 0. A live
    // stamp stamp_base_ + k puts this event in batch k + 1.
    const std::uint32_t batch =
        prev < stamp_base_
            ? 0
            : static_cast<std::uint32_t>(prev - stamp_base_) + 1;
    batch_of_[i] = batch;
    max_batch = std::max(max_batch, batch);
    const std::uint64_t stamp = stamp_base_ + batch;
    if (e.a != EventNodes::kNoNode) last_batch_[e.a] = stamp;
    if (e.b != EventNodes::kNoNode) last_batch_[e.b] = stamp;
    if (counts_.size() <= batch) counts_.resize(batch + 1, 0);
    ++counts_[batch];
  }

  // Counting sort by batch keeps input order within each batch and builds
  // the offsets table in one pass — O(n + batches), no comparisons.
  const std::size_t batches = static_cast<std::size_t>(max_batch) + 1;
  out.offsets.resize(batches + 1);
  out.offsets[0] = 0;
  for (std::size_t k = 0; k < batches; ++k) {
    out.offsets[k + 1] = out.offsets[k] + counts_[k];
  }
  out.order.resize(n);
  cursor_.assign(out.offsets.begin(), out.offsets.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    out.order[cursor_[batch_of_[i]]++] = static_cast<std::uint32_t>(i);
  }
}

}  // namespace bsub::sim
