// Streaming scenario event merge: contacts x message creations.
//
// ScenarioEventStream two-way-merges a pull-based contact stream with the
// workload's time-ordered message-creation list, producing the exact event
// sequence the serial simulator loop replays — including its tie rule (a
// creation at time t is visible to a contact starting at the same t).
// State is one buffered contact + one message cursor, so the merge adds
// nothing to a streamed run's memory footprint.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/conflict_schedule.h"
#include "trace/contact_stream.h"
#include "workload/workload.h"

namespace bsub::sim {

/// One merged scenario event: either a contact (payload inline) or a
/// message creation (index into the workload's message table).
struct ScenarioEvent {
  trace::Contact contact;            ///< valid when !is_message
  std::uint32_t message_index = 0;   ///< valid when is_message
  bool is_message = false;

  /// Event timestamp under the simulator's clock semantics.
  util::Time time(const std::vector<workload::Message>& messages) const {
    return is_message ? messages[message_index].created : contact.start;
  }

  /// Node endpoints for the conflict scheduler.
  EventNodes nodes(const std::vector<workload::Message>& messages) const {
    if (is_message) {
      return {messages[message_index].producer, EventNodes::kNoNode};
    }
    return {contact.a, contact.b};
  }
};

/// Merges a ContactStream with a workload's messages (which Workload keeps
/// sorted by creation time). Single-pass cursor with a one-contact
/// lookahead; reset() rewinds both sides.
class ScenarioEventStream {
 public:
  ScenarioEventStream(trace::ContactStream& contacts,
                      const workload::Workload& workload)
      : contacts_(&contacts), messages_(&workload.messages()) {
    has_contact_ = contacts_->next(pending_);
  }

  /// Pulls the next merged event; false when both inputs are exhausted.
  bool next(ScenarioEvent& out) {
    const auto& messages = *messages_;
    const bool take_message =
        message_index_ < messages.size() &&
        (!has_contact_ ||
         messages[message_index_].created <= pending_.start);
    if (take_message) {
      out.is_message = true;
      out.message_index = static_cast<std::uint32_t>(message_index_++);
      return true;
    }
    if (!has_contact_) return false;
    out.is_message = false;
    out.contact = pending_;
    has_contact_ = contacts_->next(pending_);
    return true;
  }

  void reset() {
    contacts_->reset();
    has_contact_ = contacts_->next(pending_);
    message_index_ = 0;
  }

 private:
  trace::ContactStream* contacts_;
  const std::vector<workload::Message>* messages_;
  trace::Contact pending_;
  bool has_contact_ = false;
  std::size_t message_index_ = 0;
};

}  // namespace bsub::sim
