// Trace analytics beyond the Table-I summary: inter-contact-time
// distributions and pair-level statistics. These are the quantities the DTN
// literature (and this paper's related work, e.g. Chaintreau et al.) uses
// to characterize human mobility, and what our synthetic generators are
// judged against.
#pragma once

#include <cstddef>
#include <vector>

#include "trace/trace.h"

namespace bsub::trace {

/// Pair-level aggregate statistics.
struct PairStats {
  std::size_t pairs_meeting = 0;      ///< distinct pairs with >= 1 contact
  double mean_contacts_per_pair = 0;  ///< over pairs that meet
  std::size_t max_contacts_per_pair = 0;
  double pair_coverage = 0;           ///< pairs meeting / all possible pairs
};

PairStats pair_stats(const ContactTrace& trace);

/// Gaps (seconds) between consecutive contacts of the same pair, pooled
/// over all pairs. Heavy-tailed in real human traces.
std::vector<double> pair_inter_contact_times_s(const ContactTrace& trace);

/// Gaps (seconds) between consecutive contacts of the same node (any peer),
/// pooled over all nodes — the refresh rate relay filters actually see.
std::vector<double> node_inter_contact_times_s(const ContactTrace& trace);

/// Contact durations in seconds, in trace order.
std::vector<double> contact_durations_s(const ContactTrace& trace);

/// Fraction of samples above `threshold` (handy for tail inspection).
double fraction_above(const std::vector<double>& samples, double threshold);

}  // namespace bsub::trace
