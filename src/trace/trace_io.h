// CRAWDAD-style text I/O for contact traces.
//
// Format: one contact per line, "<a> <b> <start_seconds> <end_seconds>",
// '#' introduces comments. A header line "# nodes <n>" fixes the node count;
// otherwise it is inferred as max id + 1. An optional "# contacts <n>"
// header declares the contact-line count. This matches the shape of the
// published Haggle / Reality contact exports, so real CRAWDAD data can be
// used in place of the synthetic traces.
//
// Parsing is strict (see DESIGN.md "Input validation & error taxonomy"):
// every rejected input carries a line-numbered util::ParseError. A contact
// line must have exactly 4 fields; node ids must be unsigned, below
// kInvalidNode, and — when a "# nodes" header is present — below the
// declared count (an id at or above it would silently undersize every
// per-node array downstream). Timestamps must be finite, in range, and
// satisfy end >= start. A "# contacts" header must match the number of
// contact lines. Non-monotone start times are legal (contacts are sorted)
// but logged once per file as a warning.
//
// Timestamps are written with fixed 3-decimal seconds and read back by
// rounding to the nearest millisecond, so save -> load -> save is
// byte-identical for the engine's millisecond-resolution times.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.h"
#include "util/errors.h"

namespace bsub::trace {

/// Parses a trace from a stream. Throws util::ParseError (with the failing
/// line number and expected-vs-found context) on malformed input.
ContactTrace read_trace(std::istream& in, std::string name = "");

/// Parses a trace from a file. Throws util::ParseError if unreadable.
ContactTrace load_trace(const std::string& path);

/// Writes a trace in the same format (millisecond-exact seconds).
void write_trace(std::ostream& out, const ContactTrace& trace);

/// Writes to a file. Throws util::ParseError if unwritable.
void save_trace(const std::string& path, const ContactTrace& trace);

}  // namespace bsub::trace
