// CRAWDAD-style text I/O for contact traces.
//
// Format: one contact per line, "<a> <b> <start_seconds> <end_seconds>",
// '#' introduces comments. A header line "# nodes <n>" fixes the node count;
// otherwise it is inferred as max id + 1. This matches the shape of the
// published Haggle / Reality contact exports, so real CRAWDAD data can be
// used in place of the synthetic traces.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.h"

namespace bsub::trace {

/// Parses a trace from a stream. Throws std::runtime_error on parse errors.
ContactTrace read_trace(std::istream& in, std::string name = "");

/// Parses a trace from a file. Throws std::runtime_error if unreadable.
ContactTrace load_trace(const std::string& path);

/// Writes a trace in the same format (seconds resolution).
void write_trace(std::ostream& out, const ContactTrace& trace);

/// Writes to a file. Throws std::runtime_error if unwritable.
void save_trace(const std::string& path, const ContactTrace& trace);

}  // namespace bsub::trace
