#include "trace/contact_stream.h"

#include <algorithm>
#include <utility>

namespace bsub::trace {

MergedContactStream::MergedContactStream(
    std::vector<std::unique_ptr<ContactStream>> sources, std::string name)
    : name_(std::move(name)), sources_(std::move(sources)) {
  for (const auto& s : sources_) {
    node_count_ = std::max(node_count_, s->node_count());
  }
  heap_.reserve(sources_.size());
}

bool MergedContactStream::head_less(const Head& x, const Head& y) const {
  if (x.contact != y.contact) return contact_order_less(x.contact, y.contact);
  return x.source < y.source;
}

void MergedContactStream::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!head_less(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void MergedContactStream::sift_down(std::size_t i) {
  for (;;) {
    const std::size_t left = 2 * i + 1;
    if (left >= heap_.size()) break;
    std::size_t best = left;
    const std::size_t right = left + 1;
    if (right < heap_.size() && head_less(heap_[right], heap_[left])) {
      best = right;
    }
    if (!head_less(heap_[best], heap_[i])) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

void MergedContactStream::prime() {
  heap_.clear();
  for (std::uint32_t s = 0; s < sources_.size(); ++s) {
    Head h;
    h.source = s;
    if (sources_[s]->next(h.contact)) {
      heap_.push_back(h);
      sift_up(heap_.size() - 1);
    }
  }
  primed_ = true;
}

bool MergedContactStream::next(Contact& out) {
  if (!primed_) prime();
  if (heap_.empty()) return false;
  out = heap_.front().contact;
  const std::uint32_t source = heap_.front().source;
  if (sources_[source]->next(heap_.front().contact)) {
    // Source still live: its next contact replaces the popped head.
    sift_down(0);
  } else {
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }
  return true;
}

void MergedContactStream::reset() {
  for (auto& s : sources_) s->reset();
  heap_.clear();
  primed_ = false;
}

std::optional<std::uint64_t> MergedContactStream::size_hint() const {
  std::uint64_t total = 0;
  for (const auto& s : sources_) {
    const auto hint = s->size_hint();
    if (!hint) return std::nullopt;
    total += *hint;
  }
  return total;
}

ContactTrace materialize(ContactStream& stream) {
  std::vector<Contact> contacts;
  if (const auto hint = stream.size_hint()) {
    contacts.reserve(static_cast<std::size_t>(*hint));
  }
  Contact c;
  while (stream.next(c)) contacts.push_back(c);
  return ContactTrace(stream.node_count(), std::move(contacts),
                      stream.name());
}

}  // namespace bsub::trace
