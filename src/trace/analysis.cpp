#include "trace/analysis.h"

#include <algorithm>
#include <map>
#include <utility>

namespace bsub::trace {

namespace {

std::map<std::pair<NodeId, NodeId>, std::vector<util::Time>> contacts_by_pair(
    const ContactTrace& trace) {
  std::map<std::pair<NodeId, NodeId>, std::vector<util::Time>> by_pair;
  for (const Contact& c : trace.contacts()) {
    by_pair[{c.a, c.b}].push_back(c.start);
  }
  return by_pair;
}

}  // namespace

PairStats pair_stats(const ContactTrace& trace) {
  PairStats stats;
  const auto by_pair = contacts_by_pair(trace);
  stats.pairs_meeting = by_pair.size();
  std::size_t total = 0;
  for (const auto& [pair, starts] : by_pair) {
    total += starts.size();
    stats.max_contacts_per_pair =
        std::max(stats.max_contacts_per_pair, starts.size());
  }
  if (!by_pair.empty()) {
    stats.mean_contacts_per_pair =
        static_cast<double>(total) / static_cast<double>(by_pair.size());
  }
  const std::size_t n = trace.node_count();
  if (n >= 2) {
    stats.pair_coverage = static_cast<double>(stats.pairs_meeting) /
                          (static_cast<double>(n) * (n - 1) / 2.0);
  }
  return stats;
}

std::vector<double> pair_inter_contact_times_s(const ContactTrace& trace) {
  std::vector<double> gaps;
  for (auto& [pair, starts] : contacts_by_pair(trace)) {
    // Starts arrive in trace (time) order already, but sort defensively.
    std::vector<util::Time> s = starts;
    std::sort(s.begin(), s.end());
    for (std::size_t i = 1; i < s.size(); ++i) {
      gaps.push_back(util::to_seconds(s[i] - s[i - 1]));
    }
  }
  return gaps;
}

std::vector<double> node_inter_contact_times_s(const ContactTrace& trace) {
  std::vector<std::vector<util::Time>> by_node(trace.node_count());
  for (const Contact& c : trace.contacts()) {
    by_node[c.a].push_back(c.start);
    by_node[c.b].push_back(c.start);
  }
  std::vector<double> gaps;
  for (auto& starts : by_node) {
    std::sort(starts.begin(), starts.end());
    for (std::size_t i = 1; i < starts.size(); ++i) {
      gaps.push_back(util::to_seconds(starts[i] - starts[i - 1]));
    }
  }
  return gaps;
}

std::vector<double> contact_durations_s(const ContactTrace& trace) {
  std::vector<double> durations;
  durations.reserve(trace.contacts().size());
  for (const Contact& c : trace.contacts()) {
    durations.push_back(util::to_seconds(c.duration()));
  }
  return durations;
}

double fraction_above(const std::vector<double>& samples, double threshold) {
  if (samples.empty()) return 0.0;
  std::size_t above = 0;
  for (double s : samples) above += (s > threshold);
  return static_cast<double>(above) / static_cast<double>(samples.size());
}

}  // namespace bsub::trace
