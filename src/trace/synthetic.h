// Synthetic human-contact trace generators.
//
// Substitute for the CRAWDAD datasets the paper evaluates on (Table I),
// which are not redistributable. The generator reproduces the statistical
// features of human-contact traces that drive DTN forwarding performance:
//
//   - heterogeneous node popularity: per-node sociability weights drawn from
//     a Pareto distribution, so a few hub nodes account for a large share of
//     contacts (the structure the paper's broker election exploits);
//   - community structure: nodes belong to groups and meet group members
//     preferentially;
//   - time-of-day rhythm: contacts arrive according to a 24 h intensity
//     profile (conference sessions vs. campus diurnal cycle);
//   - heavy-ish contact durations, clamped to a plausible Bluetooth range.
//
// Two calibrated presets match Table I: Haggle (Infocom'06) — 79 nodes,
// 3 days, 67,360 contacts, dense; and the 3-day MIT Reality slice — 97
// nodes, 54,667 contacts, sparser with stronger community isolation.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "trace/trace.h"

namespace bsub::trace {

struct SyntheticTraceConfig {
  std::string name = "synthetic";
  std::size_t node_count = 50;
  std::size_t contact_count = 10000;
  util::Time duration = 3 * util::kDay;
  std::size_t community_count = 5;
  /// Probability that a contact stays within the initiator's community.
  double intra_community_bias = 0.7;
  /// Pareto shape for sociability weights; smaller = more skewed hubs.
  double sociability_alpha = 1.5;
  /// Mean contact duration in seconds (exponential, clamped below).
  double mean_contact_duration_s = 150.0;
  double min_contact_duration_s = 10.0;
  double max_contact_duration_s = 3600.0;
  /// Session structure: human contacts cluster into co-location sessions
  /// (a conference talk, a lab meeting) — a subset of nodes mingles for a
  /// while, then disperses. Within any short window a node therefore meets
  /// only its current session peers, which is what gives interest decay its
  /// scope-limiting bite (a well-mixed Poisson process would refresh every
  /// interest everywhere continuously).
  double session_size_mean = 8.0;            ///< nodes per session (>= 2)
  util::Time session_duration_min = 30 * util::kMinute;
  util::Time session_duration_max = 2 * util::kHour;
  /// Average contacts each session member participates in per session.
  double contacts_per_member = 6.0;
  /// Fraction of contacts that are isolated random encounters (hallway
  /// passings) instead of session sightings. These fill the middle of the
  /// inter-contact-gap spectrum between dense within-session revisits and
  /// long between-session silences.
  double random_encounter_fraction = 0.3;
  /// Relative contact intensity per hour-of-day (need not be normalized).
  std::array<double, 24> hourly_intensity{
      1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
      1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1};
  std::uint64_t seed = 42;
};

/// Validates the config, throwing util::ConfigError naming the offending
/// field and the violated constraint: at least two nodes and one community,
/// positive finite durations, probabilities in [0, 1], positive rates, and
/// a usable intensity profile. generate_trace calls this first, so a
/// degenerate config is rejected instead of silently producing a broken
/// trace.
void validate(const SyntheticTraceConfig& config);

/// Draws a trace from the configured contact process. Throws
/// util::ConfigError on an invalid config (see validate).
ContactTrace generate_trace(const SyntheticTraceConfig& config);

/// Preset calibrated to Table I's Haggle (Infocom'06) row: 79 iMote-carrying
/// conference attendees over 3 days, 67,360 contacts, session-driven rhythm.
SyntheticTraceConfig haggle_infocom06_config(std::uint64_t seed = 42);

/// Preset calibrated to Table I's MIT Reality row as used in the paper (the
/// 3-day slice): 97 phone-carrying students/staff, 54,667 contacts, sparser
/// diurnal campus rhythm with stronger community isolation.
SyntheticTraceConfig mit_reality_config(std::uint64_t seed = 42);

}  // namespace bsub::trace
