#include "trace/trace.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <tuple>
#include <utility>

namespace bsub::trace {

ContactTrace::ContactTrace(std::size_t node_count,
                           std::vector<Contact> contacts, std::string name)
    : name_(std::move(name)), node_count_(node_count),
      contacts_(std::move(contacts)) {
  std::erase_if(contacts_, [node_count](const Contact& c) {
    return c.a == c.b || c.end <= c.start || c.a >= node_count ||
           c.b >= node_count;
  });
  for (Contact& c : contacts_) {
    if (c.a > c.b) std::swap(c.a, c.b);
  }
  std::sort(contacts_.begin(), contacts_.end(),
            [](const Contact& x, const Contact& y) {
              return std::tie(x.start, x.end, x.a, x.b) <
                     std::tie(y.start, y.end, y.a, y.b);
            });
}

util::Time ContactTrace::start_time() const {
  return contacts_.empty() ? 0 : contacts_.front().start;
}

util::Time ContactTrace::end_time() const {
  util::Time end = 0;
  for (const Contact& c : contacts_) end = std::max(end, c.end);
  return end;
}

TraceStats ContactTrace::stats() const {
  TraceStats s;
  s.node_count = node_count_;
  s.contact_count = contacts_.size();
  if (contacts_.empty()) return s;
  s.duration = end_time() - start_time();
  double total_dur = 0.0;
  for (const Contact& c : contacts_) total_dur += util::to_seconds(c.duration());
  s.mean_contact_duration_s = total_dur / static_cast<double>(contacts_.size());
  s.mean_contacts_per_node =
      2.0 * static_cast<double>(contacts_.size()) /
      static_cast<double>(node_count_);
  auto deg = degrees();
  double deg_sum = 0.0;
  for (std::size_t d : deg) deg_sum += static_cast<double>(d);
  s.mean_degree = deg_sum / static_cast<double>(node_count_);
  return s;
}

std::vector<std::size_t> ContactTrace::degrees() const {
  return degrees_in_window(start_time(), end_time() + 1);
}

std::vector<std::size_t> ContactTrace::degrees_in_window(
    util::Time from, util::Time to) const {
  std::vector<std::set<NodeId>> peers(node_count_);
  for (const Contact& c : contacts_) {
    if (c.start >= to) break;  // contacts sorted by start
    if (c.start < from) continue;
    peers[c.a].insert(c.b);
    peers[c.b].insert(c.a);
  }
  std::vector<std::size_t> deg(node_count_);
  for (std::size_t i = 0; i < node_count_; ++i) deg[i] = peers[i].size();
  return deg;
}

std::vector<std::size_t> ContactTrace::contact_counts() const {
  std::vector<std::size_t> counts(node_count_, 0);
  for (const Contact& c : contacts_) {
    ++counts[c.a];
    ++counts[c.b];
  }
  return counts;
}

}  // namespace bsub::trace
