#include "trace/city.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "util/errors.h"
#include "util/rng.h"

namespace bsub::trace {

namespace {

/// Generation granularity: contacts are derived slot by slot, each slot
/// from its own (seed, slot)-derived RNG, so the sequence is independent of
/// how the stream is consumed and reset() replays it exactly. Slot
/// boundaries partition start times, so per-slot sorting yields the global
/// canonical order.
constexpr util::Time kSlot = 5 * util::kMinute;
constexpr std::size_t kSlotsPerDay =
    static_cast<std::size_t>(util::kDay / kSlot);

/// Diurnal rhythm: relative contact intensity per hour of day (commute
/// peaks at 7-9 and 17-19, workday plateau, quiet nights), and how those
/// contacts split across the three mixing pools. Transit takes the
/// remainder, dominating the commute hours.
constexpr std::array<double, 24> kIntensity = {
    0.15, 0.08, 0.05, 0.05, 0.08, 0.20, 0.55, 1.10, 1.30, 1.00, 0.95, 0.95,
    1.05, 1.00, 0.95, 0.95, 1.00, 1.25, 1.15, 0.85, 0.70, 0.55, 0.40, 0.25};
constexpr std::array<double, 24> kHomeShare = {
    0.95, 0.97, 0.97, 0.97, 0.95, 0.85, 0.55, 0.15, 0.10, 0.10, 0.10, 0.10,
    0.15, 0.10, 0.10, 0.10, 0.10, 0.15, 0.30, 0.60, 0.75, 0.85, 0.90, 0.93};
constexpr std::array<double, 24> kWorkShare = {
    0.02, 0.01, 0.01, 0.01, 0.02, 0.05, 0.15, 0.25, 0.55, 0.80, 0.82, 0.80,
    0.65, 0.80, 0.82, 0.80, 0.75, 0.45, 0.25, 0.15, 0.10, 0.05, 0.04, 0.03};

void require(bool ok, const char* field, const char* constraint) {
  if (!ok) {
    throw util::ConfigError("invalid city trace config", field, constraint);
  }
}

/// Stateless mix of two 64-bit values into one well-scrambled word.
std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t state = a ^ (b * 0x9E3779B97F4A7C15ULL + 0x632BE59BD9B4E019ULL);
  return util::splitmix64(state);
}

/// Uniform double in [0, 1) from a mixed word.
double unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::size_t auto_home_communities(const CityTraceConfig& cfg) {
  return cfg.home_communities != 0
             ? cfg.home_communities
             : std::max<std::size_t>(1, cfg.node_count / 250);
}

std::size_t auto_work_communities(const CityTraceConfig& cfg) {
  return cfg.work_communities != 0
             ? cfg.work_communities
             : std::max<std::size_t>(1, cfg.node_count / 60);
}

std::size_t auto_crowd_size(const CityTraceConfig& cfg) {
  if (cfg.flash_crowd_size != 0) return cfg.flash_crowd_size;
  return std::min<std::size_t>(5000,
                               std::max<std::size_t>(2, cfg.node_count / 20));
}

/// Deterministic per-node churn: each node's active window [join, leave) is
/// a pure O(1) function of (seed, node) — no per-node arrays. Leavers drop
/// out between 30% and 90% of the trace; late joiners appear between 10%
/// and 50% in.
struct Churn {
  double leave_fraction = 0.0;
  double join_fraction = 0.0;
  util::Time duration = 0;
  std::uint64_t seed = 0;

  bool active(NodeId node, util::Time t) const {
    if (leave_fraction <= 0.0 && join_fraction <= 0.0) return true;
    const std::uint64_t h = mix(seed, node);
    const double u = unit(h);
    const double span = static_cast<double>(duration);
    if (u < leave_fraction) {
      const util::Time leave = static_cast<util::Time>(
          span * (0.3 + 0.6 * unit(mix(h, 0xA5))));
      return t < leave;
    }
    if (u < leave_fraction + join_fraction) {
      const util::Time join = static_cast<util::Time>(
          span * (0.1 + 0.4 * unit(mix(h, 0xC3))));
      return t >= join;
    }
    return true;
  }
};

/// Base for slot-driven generators: owns the per-slot buffer and the
/// refill/sort/emit cursor; subclasses derive one slot's contacts from the
/// slot RNG. Memory is O(one slot's contacts), bounded by the peak contact
/// *rate*, never the total contact count.
class SlotStream : public ContactStream {
 public:
  SlotStream(std::string name, std::size_t node_count, util::Time duration,
             std::uint64_t seed, std::uint64_t salt)
      : name_(std::move(name)), node_count_(node_count), duration_(duration),
        slot_count_(static_cast<std::size_t>((duration + kSlot - 1) / kSlot)),
        seed_(mix(seed, salt)) {}

  std::size_t node_count() const override { return node_count_; }
  const std::string& name() const override { return name_; }

  bool next(Contact& out) override {
    while (pos_ >= buffer_.size()) {
      if (next_slot_ >= slot_count_) return false;
      buffer_.clear();
      pos_ = 0;
      util::Rng rng(mix(seed_, next_slot_));
      generate_slot(next_slot_, rng, buffer_);
      std::sort(buffer_.begin(), buffer_.end(), contact_order_less);
      ++next_slot_;
    }
    out = buffer_[pos_++];
    return true;
  }

  void reset() override {
    next_slot_ = 0;
    pos_ = 0;
    buffer_.clear();
  }

 protected:
  /// Appends slot `slot`'s contacts (any order; the base sorts). Every
  /// contact must be normalized with start in [slot_begin, slot_end).
  virtual void generate_slot(std::size_t slot, util::Rng& rng,
                             std::vector<Contact>& out) = 0;

  util::Time slot_begin(std::size_t slot) const {
    return static_cast<util::Time>(slot) * kSlot;
  }
  util::Time slot_end(std::size_t slot) const {
    return std::min(duration_, slot_begin(slot) + kSlot);
  }
  util::Time duration() const { return duration_; }
  std::size_t slot_count() const { return slot_count_; }

  /// Emits a normalized contact with an exponential clamped duration.
  void emit(std::vector<Contact>& out, NodeId x, NodeId y, util::Time start,
            util::Rng& rng, const CityTraceConfig& cfg) const {
    Contact c;
    c.a = std::min(x, y);
    c.b = std::max(x, y);
    c.start = start;
    const double dur_s =
        std::clamp(rng.next_exponential(1.0 / cfg.mean_contact_duration_s),
                   cfg.min_contact_duration_s, cfg.max_contact_duration_s);
    const util::Time dur = std::max<util::Time>(1, util::from_seconds(dur_s));
    c.end = std::min(duration_, c.start + dur);
    out.push_back(c);
  }

 private:
  std::string name_;
  std::size_t node_count_;
  util::Time duration_;
  std::size_t slot_count_;
  std::uint64_t seed_;
  std::vector<Contact> buffer_;
  std::size_t pos_ = 0;
  std::size_t next_slot_ = 0;
};

/// The commuter process: neighborhood blocks by night, strided workplace
/// groups by day, city-wide transit mixing during the commute — with the
/// contact budget spread across slots by the diurnal intensity profile.
class CommuterStream final : public SlotStream {
 public:
  explicit CommuterStream(const CityTraceConfig& cfg)
      : SlotStream(cfg.name + "/commute", cfg.node_count,
                   static_cast<util::Time>(cfg.days) * util::kDay, cfg.seed,
                   /*salt=*/0x1),
        cfg_(cfg), homes_(auto_home_communities(cfg)),
        works_(auto_work_communities(cfg)),
        home_block_((cfg.node_count + homes_ - 1) / homes_),
        churn_{cfg.early_leave_fraction, cfg.late_join_fraction, duration(),
               mix(cfg.seed, 0xC4)} {
    // Per-slot intensity prefix over one day; a slot's share of the total
    // contact budget is then O(1) from (day, slot-of-day).
    day_prefix_.resize(kSlotsPerDay + 1, 0.0);
    for (std::size_t s = 0; s < kSlotsPerDay; ++s) {
      const std::size_t hour = s * kSlot / util::kHour;
      day_prefix_[s + 1] = day_prefix_[s] + kIntensity[hour];
    }
  }

 protected:
  void generate_slot(std::size_t slot, util::Rng& rng,
                     std::vector<Contact>& out) override {
    const std::uint64_t n = cum_contacts(slot + 1) - cum_contacts(slot);
    const util::Time begin = slot_begin(slot);
    const util::Time span = slot_end(slot) - begin;
    const std::size_t hour = (slot % kSlotsPerDay) * kSlot / util::kHour;
    out.reserve(out.size() + n);
    for (std::uint64_t i = 0; i < n; ++i) {
      const util::Time start = begin + static_cast<util::Time>(
                                           rng.next_below(
                                               static_cast<std::uint64_t>(span)));
      NodeId x, y;
      if (!pick_pair(hour, start, rng, x, y)) continue;  // churn shortfall
      emit(out, x, y, start, rng, cfg_);
    }
  }

 private:
  /// One contact's pair, drawn from the hour's mixing pool. Bounded
  /// retries; inactive (churned) nodes are rejected.
  bool pick_pair(std::size_t hour, util::Time at, util::Rng& rng, NodeId& x,
                 NodeId& y) const {
    const std::size_t n = node_count();
    for (int attempt = 0; attempt < 8; ++attempt) {
      const double u = rng.next_double();
      std::uint64_t a, b;
      if (u < kHomeShare[hour]) {
        // Neighborhood block: contiguous id range [lo, hi).
        const std::uint64_t h = rng.next_below(homes_);
        const std::uint64_t lo = h * home_block_;
        const std::uint64_t hi =
            std::min<std::uint64_t>(n, lo + home_block_);
        if (hi - lo < 2) continue;
        a = lo + rng.next_below(hi - lo);
        b = lo + rng.next_below(hi - lo);
      } else if (u < kHomeShare[hour] + kWorkShare[hour]) {
        // Workplace group w = {w, w + works_, w + 2*works_, ...}: strided,
        // so workmates come from different neighborhoods.
        const std::uint64_t w = rng.next_below(works_);
        const std::uint64_t members = (n - w + works_ - 1) / works_;
        if (members < 2) continue;
        a = w + rng.next_below(members) * works_;
        b = w + rng.next_below(members) * works_;
      } else {
        // Transit: city-wide mixing.
        a = rng.next_below(n);
        b = rng.next_below(n);
      }
      if (a == b) continue;
      x = static_cast<NodeId>(a);
      y = static_cast<NodeId>(b);
      if (!churn_.active(x, at) || !churn_.active(y, at)) continue;
      return true;
    }
    return false;
  }

  /// Contacts allocated to slots [0, slot): floor of the cumulative
  /// intensity share, so per-slot counts sum exactly to contact_count.
  std::uint64_t cum_contacts(std::size_t slot) const {
    if (slot >= slot_count()) return cfg_.contact_count;
    const double day_weight = day_prefix_[kSlotsPerDay];
    const double total = day_weight * static_cast<double>(cfg_.days);
    const double prefix =
        static_cast<double>(slot / kSlotsPerDay) * day_weight +
        day_prefix_[slot % kSlotsPerDay];
    return static_cast<std::uint64_t>(
        static_cast<double>(cfg_.contact_count) * (prefix / total));
  }

  CityTraceConfig cfg_;
  std::uint64_t homes_;
  std::uint64_t works_;
  std::uint64_t home_block_;
  Churn churn_;
  std::vector<double> day_prefix_;
};

/// Scheduled gatherings: each event draws a deterministic participant set
/// from the whole city and burns through its contact budget across the
/// event window, allocated per slot by elapsed fraction.
class FlashCrowdStream final : public SlotStream {
 public:
  explicit FlashCrowdStream(const CityTraceConfig& cfg)
      : SlotStream(cfg.name + "/flash", cfg.node_count,
                   static_cast<util::Time>(cfg.days) * util::kDay, cfg.seed,
                   /*salt=*/0x2),
        cfg_(cfg), crowd_size_(auto_crowd_size(cfg)),
        churn_{cfg.early_leave_fraction, cfg.late_join_fraction, duration(),
               mix(cfg.seed, 0xC4)} {
    const std::uint64_t per_member_pairs = static_cast<std::uint64_t>(
        std::llround(cfg.flash_crowd_contacts_per_member *
                     static_cast<double>(crowd_size_) / 2.0));
    const util::Time dur =
        std::min<util::Time>(cfg.flash_crowd_duration, 12 * util::kHour - 1);
    for (std::size_t day = 0; day < cfg.days; ++day) {
      for (std::size_t k = 0; k < cfg.flash_crowds_per_day; ++k) {
        Event e;
        e.seed = mix(mix(cfg.seed, 0xF1A5), day * 8191 + k);
        // Daytime window: the event starts between 09:00 and (21:00 - dur).
        const util::Time latest = 12 * util::kHour - dur;
        e.start = static_cast<util::Time>(day) * util::kDay +
                  9 * util::kHour +
                  static_cast<util::Time>(e.seed % static_cast<std::uint64_t>(
                                                       std::max<util::Time>(
                                                           1, latest)));
        e.end = e.start + dur;
        e.contacts = per_member_pairs;
        events_.push_back(e);
      }
    }
  }

 protected:
  void generate_slot(std::size_t slot, util::Rng& rng,
                     std::vector<Contact>& out) override {
    const util::Time begin = slot_begin(slot);
    const util::Time end = slot_end(slot);
    for (const Event& e : events_) {
      const util::Time ov_begin = std::max(begin, e.start);
      const util::Time ov_end = std::min(end, e.end);
      if (ov_begin >= ov_end) continue;
      const double len = static_cast<double>(e.end - e.start);
      const auto upto = [&](util::Time t) {
        return static_cast<std::uint64_t>(
            static_cast<double>(e.contacts) *
            (static_cast<double>(t - e.start) / len));
      };
      const std::uint64_t n = upto(ov_end) - upto(ov_begin);
      for (std::uint64_t i = 0; i < n; ++i) {
        const util::Time start =
            ov_begin + static_cast<util::Time>(rng.next_below(
                           static_cast<std::uint64_t>(ov_end - ov_begin)));
        NodeId x, y;
        if (!pick_pair(e, start, rng, x, y)) continue;
        emit(out, x, y, start, rng, cfg_);
      }
    }
  }

 private:
  struct Event {
    util::Time start = 0;
    util::Time end = 0;
    std::uint64_t seed = 0;
    std::uint64_t contacts = 0;
  };

  /// Participant j of an event is a deterministic hash draw from the whole
  /// city, so the crowd cuts across neighborhoods and workplaces.
  NodeId participant(const Event& e, std::uint64_t j) const {
    return static_cast<NodeId>(mix(e.seed, j) % node_count());
  }

  bool pick_pair(const Event& e, util::Time at, util::Rng& rng, NodeId& x,
                 NodeId& y) const {
    for (int attempt = 0; attempt < 8; ++attempt) {
      x = participant(e, rng.next_below(crowd_size_));
      y = participant(e, rng.next_below(crowd_size_));
      if (x == y) continue;
      if (!churn_.active(x, at) || !churn_.active(y, at)) continue;
      return true;
    }
    return false;
  }

  CityTraceConfig cfg_;
  std::uint64_t crowd_size_;
  Churn churn_;
  std::vector<Event> events_;
};

}  // namespace

void validate(const CityTraceConfig& config) {
  require(config.node_count >= 2, "node_count", ">= 2 nodes");
  require(config.node_count <= static_cast<std::size_t>(kInvalidNode),
          "node_count", "to fit NodeId");
  require(config.contact_count >= 1, "contact_count", ">= 1 contact");
  require(config.days >= 1, "days", ">= 1 day");
  require(config.home_communities <= config.node_count, "home_communities",
          "<= node_count");
  require(config.work_communities <= config.node_count, "work_communities",
          "<= node_count");
  const auto frac_ok = [](double v) {
    return std::isfinite(v) && v >= 0.0 && v <= 1.0;
  };
  require(frac_ok(config.early_leave_fraction), "early_leave_fraction",
          "in [0, 1]");
  require(frac_ok(config.late_join_fraction), "late_join_fraction",
          "in [0, 1]");
  require(config.early_leave_fraction + config.late_join_fraction <= 0.9,
          "early_leave_fraction + late_join_fraction",
          "<= 0.9 (some nodes must stay active)");
  require(std::isfinite(config.mean_contact_duration_s) &&
              config.mean_contact_duration_s > 0.0,
          "mean_contact_duration_s", "finite and > 0");
  require(std::isfinite(config.min_contact_duration_s) &&
              config.min_contact_duration_s >= 0.0,
          "min_contact_duration_s", "finite and >= 0");
  require(std::isfinite(config.max_contact_duration_s) &&
              config.max_contact_duration_s >= config.min_contact_duration_s,
          "max_contact_duration_s", "finite and >= min_contact_duration_s");
  if (config.flash_crowds_per_day > 0) {
    require(config.flash_crowd_duration > 0 &&
                config.flash_crowd_duration < 12 * util::kHour,
            "flash_crowd_duration", "in (0, 12h)");
    require(std::isfinite(config.flash_crowd_contacts_per_member) &&
                config.flash_crowd_contacts_per_member > 0.0,
            "flash_crowd_contacts_per_member", "finite and > 0");
    require(config.flash_crowd_size == 0 ||
                (config.flash_crowd_size >= 2 &&
                 config.flash_crowd_size <= config.node_count),
            "flash_crowd_size", "0 (auto) or in [2, node_count]");
  }
}

std::unique_ptr<ContactStream> make_commuter_stream(
    const CityTraceConfig& config) {
  validate(config);
  return std::make_unique<CommuterStream>(config);
}

std::unique_ptr<ContactStream> make_flash_crowd_stream(
    const CityTraceConfig& config) {
  validate(config);
  return std::make_unique<FlashCrowdStream>(config);
}

std::unique_ptr<ContactStream> make_city_stream(
    const CityTraceConfig& config) {
  validate(config);
  std::vector<std::unique_ptr<ContactStream>> parts;
  parts.push_back(std::make_unique<CommuterStream>(config));
  if (config.flash_crowds_per_day > 0) {
    parts.push_back(std::make_unique<FlashCrowdStream>(config));
  }
  return std::make_unique<MergedContactStream>(std::move(parts), config.name);
}

CityTraceConfig city_config(std::size_t node_count,
                            std::uint64_t contact_count, std::uint64_t seed) {
  CityTraceConfig cfg;
  cfg.name = "city-" + std::to_string(node_count) + "n-" +
             std::to_string(contact_count) + "c";
  cfg.node_count = node_count;
  cfg.contact_count = contact_count;
  // Hold the per-node daily contact rate roughly constant (~10 meetings per
  // node per day, a plausible urban encounter rate): a bigger contact budget
  // means a *longer* trace, not a denser day. This keeps protocol state that
  // is inherently density-bound (the 5h broker-election window, message
  // spread per TTL) flat across contact volumes, so scaling the contact
  // axis tests trace length — exactly what streaming claims is free.
  const double daily_budget = static_cast<double>(node_count) * 10.0;
  cfg.days = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             static_cast<double>(contact_count) / daily_budget + 0.5));
  cfg.seed = seed;
  return cfg;
}

}  // namespace bsub::trace
