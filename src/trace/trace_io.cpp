#include "trace/trace_io.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "util/errors.h"
#include "util/logging.h"

namespace bsub::trace {

namespace {

// Largest |seconds| the parser accepts. Chosen so the millisecond value
// stays below 2^53 and is therefore exactly representable as a double:
// write_trace's seconds output then reparses to the identical util::Time
// (about 285 millennia of range — far beyond any trace).
constexpr double kMaxAbsSeconds = 9.0e12;

/// Parses a full token as an unsigned node id; rejects signs, partial
/// consumption ("1e3"), and ids that collide with kInvalidNode.
NodeId parse_node_id(const std::string& tok, std::size_t line_no) {
  if (tok.empty() || tok[0] == '-' || tok[0] == '+') {
    throw util::ParseError("bad node id", line_no, "unsigned integer",
                           "'" + tok + "'");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
  if (end != tok.c_str() + tok.size() || errno == ERANGE ||
      v >= kInvalidNode) {
    throw util::ParseError("bad node id", line_no,
                           "integer in [0, " + std::to_string(kInvalidNode) +
                               ")",
                           "'" + tok + "'");
  }
  return static_cast<NodeId>(v);
}

/// Parses a full token as a finite timestamp in seconds within the
/// representable millisecond range.
double parse_seconds(const std::string& tok, std::size_t line_no) {
  errno = 0;
  char* end = nullptr;
  const double s = tok.empty() ? 0.0 : std::strtod(tok.c_str(), &end);
  if (tok.empty() || end != tok.c_str() + tok.size()) {
    throw util::ParseError("bad timestamp", line_no, "decimal seconds",
                           "'" + tok + "'");
  }
  if (!std::isfinite(s) || std::abs(s) > kMaxAbsSeconds) {
    throw util::ParseError("timestamp out of range", line_no,
                           "finite |seconds| <= 9.0e12", "'" + tok + "'");
  }
  return s;
}

/// Seconds -> milliseconds, rounded to nearest. Rounding (rather than the
/// truncation of util::from_seconds) makes the text format exact for
/// millisecond-resolution times: write_trace prints 3 decimals, and the
/// nearest double to "X.YYY" rounds back to exactly X*1000+YYY ms.
util::Time seconds_to_time(double s) {
  return static_cast<util::Time>(std::llround(s * 1000.0));
}

/// Parses the value of a "# nodes N" / "# contacts N" header strictly.
std::size_t parse_header_count(std::istringstream& hs, const char* header,
                               std::size_t line_no) {
  std::string tok, extra;
  if (!(hs >> tok)) {
    throw util::ParseError(std::string("bad '# ") + header + "' header",
                           line_no, "a count", "nothing");
  }
  if (hs >> extra) {
    throw util::ParseError(std::string("bad '# ") + header + "' header",
                           line_no, "a single count",
                           "trailing token '" + extra + "'");
  }
  if (tok[0] == '-' || tok[0] == '+') {
    throw util::ParseError(std::string("bad '# ") + header + "' header",
                           line_no, "unsigned count", "'" + tok + "'");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
  if (end != tok.c_str() + tok.size() || errno == ERANGE) {
    throw util::ParseError(std::string("bad '# ") + header + "' header",
                           line_no, "unsigned count", "'" + tok + "'");
  }
  return static_cast<std::size_t>(v);
}

}  // namespace

ContactTrace read_trace(std::istream& in, std::string name) {
  std::vector<Contact> contacts;
  std::size_t node_count = 0;
  bool explicit_nodes = false;
  std::size_t declared_contacts = 0;
  bool explicit_contacts = false;
  NodeId max_id = 0;
  util::Time prev_start = std::numeric_limits<util::Time>::min();
  bool warned_nonmonotonic = false;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream hs(line.substr(1));
      std::string word;
      if (hs >> word) {
        if (word == "nodes") {
          if (explicit_nodes) {
            throw util::ParseError("duplicate '# nodes' header", line_no);
          }
          node_count = parse_header_count(hs, "nodes", line_no);
          explicit_nodes = true;
        } else if (word == "contacts") {
          if (explicit_contacts) {
            throw util::ParseError("duplicate '# contacts' header", line_no);
          }
          declared_contacts = parse_header_count(hs, "contacts", line_no);
          explicit_contacts = true;
        }
        // Any other '#' line is a free-form comment.
      }
      continue;
    }

    std::istringstream ls(line);
    std::string ta, tb, tstart, tend, extra;
    if (!(ls >> ta >> tb >> tstart >> tend)) {
      int fields = 0;
      std::istringstream count(line);
      std::string tok;
      while (count >> tok) ++fields;
      throw util::ParseError("malformed contact line", line_no,
                             "4 fields (a b start end)",
                             std::to_string(fields) + " field(s)");
    }
    if (ls >> extra) {
      throw util::ParseError("malformed contact line", line_no,
                             "4 fields (a b start end)",
                             "trailing token '" + extra + "'");
    }

    Contact c;
    c.a = parse_node_id(ta, line_no);
    c.b = parse_node_id(tb, line_no);
    const double start_s = parse_seconds(tstart, line_no);
    const double end_s = parse_seconds(tend, line_no);
    if (end_s < start_s) {
      throw util::ParseError("contact ends before it starts", line_no,
                             "end >= start",
                             "start=" + tstart + " end=" + tend);
    }
    if (explicit_nodes && (c.a >= node_count || c.b >= node_count)) {
      throw util::ParseError(
          "node id exceeds declared node count", line_no,
          "ids below " + std::to_string(node_count),
          std::to_string(std::max(c.a, c.b)));
    }
    c.start = seconds_to_time(start_s);
    c.end = seconds_to_time(end_s);

    if (c.start < prev_start && !warned_nonmonotonic) {
      util::log_warn("trace ", name.empty() ? "<stream>" : name, " line ",
                     line_no,
                     ": contact starts before its predecessor; timestamps "
                     "are not monotone (contacts will be sorted)");
      warned_nonmonotonic = true;
    }
    prev_start = c.start;

    max_id = std::max({max_id, c.a, c.b});
    contacts.push_back(c);
  }

  if (in.bad()) {
    throw util::ParseError("I/O error while reading trace", line_no);
  }
  if (explicit_contacts && declared_contacts != contacts.size()) {
    throw util::ParseError(
        "contact count mismatch", 0,
        std::to_string(declared_contacts) + " per '# contacts' header",
        std::to_string(contacts.size()) + " contact line(s)");
  }
  if (!explicit_nodes) {
    node_count = contacts.empty() ? 0 : static_cast<std::size_t>(max_id) + 1;
  }
  return ContactTrace(node_count, std::move(contacts), std::move(name));
}

ContactTrace load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw util::ParseError("cannot open trace file: " + path);
  return read_trace(in, path);
}

void write_trace(std::ostream& out, const ContactTrace& trace) {
  out << "# nodes " << trace.node_count() << "\n";
  out << "# contacts " << trace.contacts().size() << "\n";
  // Fixed 3-decimal seconds are exact for millisecond-resolution times, so
  // save -> load -> save is byte-identical (see read_trace's rounding).
  const auto flags = out.flags();
  const auto precision = out.precision();
  out << std::fixed << std::setprecision(3);
  for (const Contact& c : trace.contacts()) {
    out << c.a << ' ' << c.b << ' ' << util::to_seconds(c.start) << ' '
        << util::to_seconds(c.end) << "\n";
  }
  out.flags(flags);
  out.precision(precision);
}

void save_trace(const std::string& path, const ContactTrace& trace) {
  std::ofstream out(path);
  if (!out) throw util::ParseError("cannot write trace file: " + path);
  write_trace(out, trace);
  out.flush();
  if (!out) throw util::ParseError("I/O error while writing trace: " + path);
}

}  // namespace bsub::trace
