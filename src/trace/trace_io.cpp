#include "trace/trace_io.h"

#include <fstream>
#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace bsub::trace {

ContactTrace read_trace(std::istream& in, std::string name) {
  std::vector<Contact> contacts;
  std::size_t node_count = 0;
  bool explicit_nodes = false;
  NodeId max_id = 0;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream hs(line.substr(1));
      std::string word;
      if (hs >> word && word == "nodes") {
        if (hs >> node_count) explicit_nodes = true;
      }
      continue;
    }
    std::istringstream ls(line);
    std::uint64_t a = 0, b = 0;
    double start_s = 0.0, end_s = 0.0;
    if (!(ls >> a >> b >> start_s >> end_s)) {
      throw std::runtime_error("trace parse error at line " +
                               std::to_string(line_no));
    }
    Contact c;
    c.a = static_cast<NodeId>(a);
    c.b = static_cast<NodeId>(b);
    c.start = util::from_seconds(start_s);
    c.end = util::from_seconds(end_s);
    max_id = std::max({max_id, c.a, c.b});
    contacts.push_back(c);
  }
  if (!explicit_nodes) {
    node_count = contacts.empty() ? 0 : static_cast<std::size_t>(max_id) + 1;
  }
  return ContactTrace(node_count, std::move(contacts), std::move(name));
}

ContactTrace load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  return read_trace(in, path);
}

void write_trace(std::ostream& out, const ContactTrace& trace) {
  out << "# nodes " << trace.node_count() << "\n";
  out << "# contacts " << trace.contacts().size() << "\n";
  for (const Contact& c : trace.contacts()) {
    out << c.a << ' ' << c.b << ' ' << util::to_seconds(c.start) << ' '
        << util::to_seconds(c.end) << "\n";
  }
}

void save_trace(const std::string& path, const ContactTrace& trace) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write trace file: " + path);
  write_trace(out, trace);
}

}  // namespace bsub::trace
