// City-scale synthetic contact generators: lazy, deterministic streams far
// beyond the paper's 97-node traces (Table I), for the 10^5-10^6-node
// regime where filter-parameter behavior becomes interesting (Marandi et
// al., BF-based epidemic forwarding in DTNs).
//
// Unlike src/trace/synthetic.* — which materializes a whole ContactTrace —
// these generators implement trace::ContactStream: contacts are derived
// lazily, slot by slot (a slot is a few minutes of city time), from a
// per-slot RNG seeded by (seed, slot index). State is O(nodes + one slot's
// contacts), never O(total contacts), and the sequence is a pure function
// of the config — resetting or re-creating a stream replays the identical
// contact sequence, and the stream order matches ContactTrace's canonical
// (start, end, a, b) order so streamed and materialized execution are
// bit-identical.
//
// The model:
//   - home/work/transit community structure: nodes live in neighborhood
//     blocks (contiguous id ranges) and work in strided workplace groups
//     that cut across neighborhoods; contacts draw from the block, the
//     workplace, or city-wide transit mixing according to the hour;
//   - diurnal rhythm: a 24 h intensity profile (quiet nights, commute
//     peaks, work plateau, evening taper) tiled across multi-day traces,
//     so commuter traces repeat day over day;
//   - node churn: a fraction of nodes drops out partway through the trace
//     and a fraction only joins partway in — both deterministic per node;
//   - flash crowds: scheduled gatherings (a stadium, a rally) where a
//     random subset of the city meets at a far higher rate for a bounded
//     window, generated as an independent sub-stream;
//   - composition: independent sub-generators (commuter rhythm, flash
//     crowds) are combined with a deterministic k-way merge
//     (MergedContactStream) into one time-ordered stream.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "trace/contact_stream.h"

namespace bsub::trace {

struct CityTraceConfig {
  std::string name = "city";
  std::size_t node_count = 100000;
  /// Target contact volume of the commuter process across the whole trace
  /// (flash crowds add their own contacts on top). The generator allocates
  /// this budget across time slots proportionally to the diurnal intensity;
  /// churn may shave off a small fraction (dropped draws hitting inactive
  /// nodes).
  std::uint64_t contact_count = 1000000;
  /// Trace length in whole days (commuter rhythm repeats daily).
  std::size_t days = 1;
  /// Neighborhood blocks (contiguous id ranges); 0 = one per ~250 nodes.
  std::size_t home_communities = 0;
  /// Workplace groups (strided across neighborhoods); 0 = one per ~60 nodes.
  std::size_t work_communities = 0;
  /// Churn: fraction of nodes that leave partway through the trace, and
  /// fraction that only join partway in.
  double early_leave_fraction = 0.05;
  double late_join_fraction = 0.05;
  /// Flash crowds per day (0 disables the sub-stream entirely).
  std::size_t flash_crowds_per_day = 2;
  /// Participants per crowd; 0 = auto (node_count / 20, capped at 5000).
  std::size_t flash_crowd_size = 0;
  util::Time flash_crowd_duration = 2 * util::kHour;
  /// Sightings each crowd member participates in over the event.
  double flash_crowd_contacts_per_member = 4.0;
  /// Contact durations (exponential, clamped).
  double mean_contact_duration_s = 120.0;
  double min_contact_duration_s = 10.0;
  double max_contact_duration_s = 1800.0;
  std::uint64_t seed = 42;
};

/// Validates the config, throwing util::ConfigError naming the offending
/// field (zero nodes, zero days, non-finite durations, fractions outside
/// [0, 1], churn that would leave nobody active, ...).
void validate(const CityTraceConfig& config);

/// The commuter sub-stream alone: home/work/transit rhythm with churn.
std::unique_ptr<ContactStream> make_commuter_stream(
    const CityTraceConfig& config);

/// The flash-crowd sub-stream alone (empty if flash_crowds_per_day == 0).
std::unique_ptr<ContactStream> make_flash_crowd_stream(
    const CityTraceConfig& config);

/// The full city scenario: commuter rhythm + flash crowds, k-way merged
/// into one ordered stream. Throws util::ConfigError on an invalid config.
std::unique_ptr<ContactStream> make_city_stream(const CityTraceConfig& config);

/// Preset scaled to a target size: communities and crowd sizes derived from
/// the population, and days chosen to hold the per-node daily contact rate
/// roughly constant (~10/node/day, at least one day) — a bigger contact
/// budget means a longer trace, not a denser day.
CityTraceConfig city_config(std::size_t node_count, std::uint64_t contact_count,
                            std::uint64_t seed = 42);

}  // namespace bsub::trace
