// Pull-based contact streams: the scenario substrate for city-scale runs.
//
// A ContactStream is a cursor over a time-ordered sequence of contacts. The
// execution pipeline (sim::Simulator, engine::TraceRunner,
// net::ContactOrchestrator) consumes scenarios through this interface with a
// bounded window of in-flight events, so a million-node, hundred-million-
// contact run never materializes the trace in RAM — peak memory is
// O(node state + window), independent of contact count.
//
// Ordering contract: next() yields contacts in non-decreasing
// (start, end, a, b) lexicographic order — exactly the total order
// ContactTrace's constructor sorts into — with each contact normalized
// (a < b, end > start, both ids < node_count()). A generator that honors
// this contract is bit-identical to its own materialization: running the
// stream directly and running materialize(stream) produce the same event
// sequence, hence the same RunResults (the stream differential test
// enforces this).
//
// Streams are single-pass cursors; reset() rewinds to the beginning
// (generators re-derive everything from their seed, so rewinding is cheap
// and exact).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "trace/contact.h"
#include "trace/trace.h"

namespace bsub::trace {

/// Canonical stream/trace contact order: (start, end, a, b) lexicographic.
inline bool contact_order_less(const Contact& x, const Contact& y) {
  if (x.start != y.start) return x.start < y.start;
  if (x.end != y.end) return x.end < y.end;
  if (x.a != y.a) return x.a < y.a;
  return x.b < y.b;
}

/// A cursor yielding time-ordered Contact events (see the ordering contract
/// above). The number of nodes is known up front; the number of contacts
/// generally is not (size_hint() when it is).
class ContactStream {
 public:
  virtual ~ContactStream() = default;

  /// Node-id space: every yielded contact satisfies a < b < node_count().
  virtual std::size_t node_count() const = 0;

  /// Pulls the next contact. Returns false when the stream is exhausted
  /// (out is untouched in that case).
  virtual bool next(Contact& out) = 0;

  /// Rewinds to the first contact. Every in-tree stream supports this
  /// (materialized traces reset a cursor; generators re-seed).
  virtual void reset() = 0;

  /// Exact total contact count when cheaply known (materialized traces),
  /// nullopt for lazy generators.
  virtual std::optional<std::uint64_t> size_hint() const {
    return std::nullopt;
  }

  /// Human-readable scenario name for reports.
  virtual const std::string& name() const {
    static const std::string kEmpty;
    return kEmpty;
  }
};

/// Thin adapter presenting a materialized ContactTrace as a stream: the
/// legacy path. ContactTrace's constructor already sorts into the canonical
/// order, so the adapter is a bare cursor. Does not own the trace.
class MaterializedStream final : public ContactStream {
 public:
  explicit MaterializedStream(const ContactTrace& trace) : trace_(&trace) {}

  std::size_t node_count() const override { return trace_->node_count(); }

  bool next(Contact& out) override {
    if (pos_ >= trace_->contacts().size()) return false;
    out = trace_->contacts()[pos_++];
    return true;
  }

  void reset() override { pos_ = 0; }

  std::optional<std::uint64_t> size_hint() const override {
    return trace_->contacts().size();
  }

  const std::string& name() const override { return trace_->name(); }

 private:
  const ContactTrace* trace_;
  std::size_t pos_ = 0;
};

/// K-way merge of independently ordered sub-streams into one ordered
/// stream, for composing scenario generators (commuter rhythm + flash
/// crowds + ...). A binary heap keyed by (contact order, source index)
/// keeps the merge deterministic: ties between sources always resolve to
/// the lower source index. State is O(sources), one buffered contact each.
class MergedContactStream final : public ContactStream {
 public:
  MergedContactStream(std::vector<std::unique_ptr<ContactStream>> sources,
                      std::string name = "merged");

  std::size_t node_count() const override { return node_count_; }
  bool next(Contact& out) override;
  void reset() override;
  std::optional<std::uint64_t> size_hint() const override;
  const std::string& name() const override { return name_; }

 private:
  struct Head {
    Contact contact;
    std::uint32_t source;
  };
  bool head_less(const Head& x, const Head& y) const;
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void prime();

  std::string name_;
  std::vector<std::unique_ptr<ContactStream>> sources_;
  std::size_t node_count_ = 0;
  std::vector<Head> heap_;
  bool primed_ = false;
};

/// Drains the stream into a ContactTrace (for small scenarios, analysis,
/// and differential tests). The constructor re-sorts into the same total
/// order the stream contract mandates, so a conforming stream round-trips
/// order-identically.
ContactTrace materialize(ContactStream& stream);

}  // namespace bsub::trace
