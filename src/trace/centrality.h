// Degree-centrality measures over contact traces (paper sections II-A,
// VII-A): the paper sets each node's message-generation rate proportionally
// to its centrality and drives broker election from windowed degrees.
#pragma once

#include <vector>

#include "trace/trace.h"

namespace bsub::trace {

/// Degree centrality: unique peers met across the whole trace, normalized
/// to [0, 1] by (node_count - 1). Nodes that meet everyone score 1.
std::vector<double> degree_centrality(const ContactTrace& trace);

/// Contact-volume centrality: share of total contact participations.
std::vector<double> contact_centrality(const ContactTrace& trace);

/// Min/max of a centrality vector, as (min, max); (0, 0) when empty.
std::pair<double, double> centrality_range(const std::vector<double>& c);

}  // namespace bsub::trace
