// Container and statistics for a contact trace (paper Table I substrate).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "trace/contact.h"
#include "util/time.h"

namespace bsub::trace {

/// Aggregate statistics of a trace, mirroring the paper's Table I plus the
/// distribution facts the synthetic generators are calibrated against.
struct TraceStats {
  std::size_t node_count = 0;
  std::size_t contact_count = 0;
  util::Time duration = 0;             ///< last end - first start
  double mean_contact_duration_s = 0;  ///< seconds
  double mean_contacts_per_node = 0;
  double mean_degree = 0;              ///< unique peers met per node
};

/// An immutable, time-ordered collection of contacts.
class ContactTrace {
 public:
  ContactTrace() = default;

  /// Takes ownership of contacts; normalizes (a < b), drops empty/negative
  /// durations and self-contacts, sorts by start time.
  ContactTrace(std::size_t node_count, std::vector<Contact> contacts,
               std::string name = "");

  const std::string& name() const { return name_; }
  std::size_t node_count() const { return node_count_; }
  const std::vector<Contact>& contacts() const { return contacts_; }
  bool empty() const { return contacts_.empty(); }

  util::Time start_time() const;
  util::Time end_time() const;

  TraceStats stats() const;

  /// Unique peers each node meets over the whole trace (degree centrality).
  std::vector<std::size_t> degrees() const;

  /// Unique peers each node meets within [from, to).
  std::vector<std::size_t> degrees_in_window(util::Time from,
                                             util::Time to) const;

  /// Total number of contacts each node participates in.
  std::vector<std::size_t> contact_counts() const;

 private:
  std::string name_;
  std::size_t node_count_ = 0;
  std::vector<Contact> contacts_;
};

}  // namespace bsub::trace
