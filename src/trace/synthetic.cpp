#include "trace/synthetic.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "util/errors.h"
#include "util/rng.h"

namespace bsub::trace {

namespace {

void require(bool ok, const char* field, const char* constraint) {
  if (!ok) {
    throw util::ConfigError("invalid synthetic trace config", field,
                            constraint);
  }
}

bool finite_positive(double v) { return std::isfinite(v) && v > 0.0; }

bool is_probability(double v) {
  return std::isfinite(v) && v >= 0.0 && v <= 1.0;
}

/// Samples a start time from the piecewise-constant hour-of-day intensity
/// profile tiled across the trace duration.
class StartTimeSampler {
 public:
  StartTimeSampler(const std::array<double, 24>& hourly, util::Time duration)
      : duration_(duration) {
    // Build the CDF over whole hours of the trace; the profile repeats
    // every 24 h.
    std::size_t hours =
        static_cast<std::size_t>((duration + util::kHour - 1) / util::kHour);
    cdf_.resize(hours);
    double acc = 0.0;
    for (std::size_t h = 0; h < hours; ++h) {
      acc += std::max(0.0, hourly[h % 24]);
      cdf_[h] = acc;
    }
    assert(acc > 0.0);
    for (double& v : cdf_) v /= acc;
  }

  util::Time sample(util::Rng& rng) const {
    double u = rng.next_double();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    std::size_t hour = static_cast<std::size_t>(it - cdf_.begin());
    if (hour >= cdf_.size()) hour = cdf_.size() - 1;
    util::Time within = static_cast<util::Time>(rng.next_double() *
                                                static_cast<double>(util::kHour));
    util::Time t = static_cast<util::Time>(hour) * util::kHour + within;
    return std::min(t, duration_ - 1);
  }

 private:
  util::Time duration_;
  std::vector<double> cdf_;
};

}  // namespace

void validate(const SyntheticTraceConfig& config) {
  require(config.node_count >= 2, "node_count", ">= 2 nodes");
  require(config.community_count >= 1, "community_count", ">= 1 community");
  require(config.community_count <= config.node_count, "community_count",
          "<= node_count");
  require(config.duration > 0, "duration", "> 0");
  require(finite_positive(config.mean_contact_duration_s),
          "mean_contact_duration_s", "finite and > 0");
  require(std::isfinite(config.min_contact_duration_s) &&
              config.min_contact_duration_s >= 0.0,
          "min_contact_duration_s", "finite and >= 0");
  require(std::isfinite(config.max_contact_duration_s) &&
              config.max_contact_duration_s >= config.min_contact_duration_s,
          "max_contact_duration_s", "finite and >= min_contact_duration_s");
  require(is_probability(config.intra_community_bias), "intra_community_bias",
          "in [0, 1]");
  require(is_probability(config.random_encounter_fraction),
          "random_encounter_fraction", "in [0, 1]");
  require(finite_positive(config.sociability_alpha), "sociability_alpha",
          "finite and > 0");
  require(std::isfinite(config.session_size_mean) &&
              config.session_size_mean >= 2.0,
          "session_size_mean", ">= 2 nodes per session");
  require(config.session_duration_min > 0, "session_duration_min", "> 0");
  require(config.session_duration_max >= config.session_duration_min,
          "session_duration_max", ">= session_duration_min");
  require(finite_positive(config.contacts_per_member), "contacts_per_member",
          "finite and > 0");
  double intensity_sum = 0.0;
  for (double v : config.hourly_intensity) {
    require(std::isfinite(v) && v >= 0.0, "hourly_intensity",
            "finite and >= 0 per hour");
    intensity_sum += v;
  }
  require(intensity_sum > 0.0, "hourly_intensity", "a positive total");
}

ContactTrace generate_trace(const SyntheticTraceConfig& config) {
  validate(config);
  util::Rng rng(config.seed);
  util::Rng pair_rng = rng.split(1);
  util::Rng time_rng = rng.split(2);
  util::Rng dur_rng = rng.split(3);

  // Per-node sociability weights (heavy-tailed) and community labels.
  std::vector<double> weight(config.node_count);
  std::vector<std::size_t> community(config.node_count);
  for (std::size_t i = 0; i < config.node_count; ++i) {
    weight[i] = rng.next_pareto(1.0, config.sociability_alpha);
    community[i] = i % config.community_count;  // balanced assignment
  }

  // Per-community weight lists for biased peer selection.
  std::vector<std::vector<NodeId>> members(config.community_count);
  std::vector<std::vector<double>> member_weight(config.community_count);
  for (std::size_t i = 0; i < config.node_count; ++i) {
    members[community[i]].push_back(static_cast<NodeId>(i));
    member_weight[community[i]].push_back(weight[i]);
  }

  StartTimeSampler start_sampler(config.hourly_intensity, config.duration);

  std::vector<Contact> contacts;
  contacts.reserve(config.contact_count);
  const double min_dur = config.min_contact_duration_s;
  const double max_dur = config.max_contact_duration_s;

  // Contacts are generated session by session: a seed community hosts a
  // gathering, members are drawn (mostly) from it weighted by sociability,
  // and the members mingle pairwise for the session's duration.
  std::vector<NodeId> session;
  std::vector<double> session_weight;
  while (contacts.size() < config.contact_count) {
    if (pair_rng.next_bool(config.random_encounter_fraction)) {
      // An isolated hallway encounter between one community-biased pair.
      std::size_t a = pair_rng.next_weighted(weight);
      std::size_t b = a;
      const bool intra = pair_rng.next_bool(config.intra_community_bias) &&
                         members[community[a]].size() > 1;
      for (int attempts = 0; b == a && attempts < 64; ++attempts) {
        b = intra ? members[community[a]][pair_rng.next_weighted(
                        member_weight[community[a]])]
                  : pair_rng.next_weighted(weight);
      }
      if (b == a) continue;
      Contact c;
      c.a = static_cast<NodeId>(std::min(a, b));
      c.b = static_cast<NodeId>(std::max(a, b));
      c.start = start_sampler.sample(time_rng);
      double dur_s = std::clamp(
          dur_rng.next_exponential(1.0 / config.mean_contact_duration_s),
          min_dur, max_dur);
      c.end = std::min<util::Time>(c.start + util::from_seconds(dur_s),
                                   config.duration);
      if (c.end > c.start) contacts.push_back(c);
      continue;
    }
    const util::Time session_start = start_sampler.sample(time_rng);
    const util::Time session_duration = static_cast<util::Time>(
        pair_rng.next_int(config.session_duration_min,
                          config.session_duration_max));
    const std::size_t target_size = std::max<std::size_t>(
        2, std::min(config.node_count,
                    1 + pair_rng.next_poisson(config.session_size_mean - 1)));
    const std::size_t seed_community =
        community[pair_rng.next_weighted(weight)];

    // Draw distinct members: from the seed community with the configured
    // bias, otherwise from everyone; always sociability-weighted.
    session.clear();
    session_weight.clear();
    for (int attempts = 0;
         session.size() < target_size && attempts < 256; ++attempts) {
      std::size_t n;
      if (pair_rng.next_bool(config.intra_community_bias)) {
        std::size_t idx = pair_rng.next_weighted(member_weight[seed_community]);
        n = members[seed_community][idx];
      } else {
        n = pair_rng.next_weighted(weight);
      }
      if (std::find(session.begin(), session.end(),
                    static_cast<NodeId>(n)) == session.end()) {
        session.push_back(static_cast<NodeId>(n));
        session_weight.push_back(weight[n]);
      }
    }
    if (session.size() < 2) continue;

    // Pairwise sightings among members, spread across the session.
    const std::size_t session_contacts = std::max<std::size_t>(
        1, static_cast<std::size_t>(config.contacts_per_member *
                                    static_cast<double>(session.size()) /
                                    2.0));
    for (std::size_t i = 0;
         i < session_contacts && contacts.size() < config.contact_count;
         ++i) {
      std::size_t ia = pair_rng.next_weighted(session_weight);
      std::size_t ib = ia;
      for (int attempts = 0; ib == ia && attempts < 64; ++attempts) {
        ib = pair_rng.next_weighted(session_weight);
      }
      if (ib == ia) continue;
      Contact c;
      c.a = std::min(session[ia], session[ib]);
      c.b = std::max(session[ia], session[ib]);
      c.start = session_start +
                static_cast<util::Time>(time_rng.next_double() *
                                        static_cast<double>(session_duration));
      double dur_s = std::clamp(
          dur_rng.next_exponential(1.0 / config.mean_contact_duration_s),
          min_dur, max_dur);
      c.end = std::min<util::Time>(c.start + util::from_seconds(dur_s),
                                   config.duration);
      if (c.end > c.start) contacts.push_back(c);
    }
  }

  return ContactTrace(config.node_count, std::move(contacts), config.name);
}

SyntheticTraceConfig haggle_infocom06_config(std::uint64_t seed) {
  SyntheticTraceConfig cfg;
  cfg.name = "haggle-infocom06-like";
  cfg.node_count = 79;
  cfg.contact_count = 67360;
  cfg.duration = 3 * util::kDay;
  cfg.community_count = 6;          // parallel session tracks / affiliations
  cfg.intra_community_bias = 0.55;  // conferences mix heavily
  cfg.sociability_alpha = 1.6;
  cfg.mean_contact_duration_s = 120.0;
  cfg.session_size_mean = 10.0;     // talks, lunch tables, hallway clusters
  cfg.session_duration_min = 30 * util::kMinute;
  cfg.session_duration_max = 2 * util::kHour;
  cfg.contacts_per_member = 7.0;
  // Conference rhythm: quiet nights, session blocks, lunch and evening
  // social peaks.
  cfg.hourly_intensity = {0.05, 0.03, 0.02, 0.02, 0.02, 0.05,  // 00-05
                          0.15, 0.40, 0.90, 1.00, 1.00, 1.00,  // 06-11
                          1.30, 1.10, 1.00, 1.00, 1.00, 0.90,  // 12-17
                          0.80, 0.90, 0.70, 0.40, 0.20, 0.10}; // 18-23
  cfg.seed = seed;
  return cfg;
}

SyntheticTraceConfig mit_reality_config(std::uint64_t seed) {
  SyntheticTraceConfig cfg;
  cfg.name = "mit-reality-3day-like";
  cfg.node_count = 97;
  cfg.contact_count = 54667;
  cfg.duration = 3 * util::kDay;
  cfg.community_count = 10;         // labs / dorm groups
  cfg.intra_community_bias = 0.85;  // campus life is cliquish
  cfg.sociability_alpha = 1.4;      // stronger hubs
  cfg.mean_contact_duration_s = 180.0;
  cfg.session_size_mean = 5.0;      // small lab/classroom groups
  cfg.session_duration_min = 45 * util::kMinute;
  cfg.session_duration_max = 3 * util::kHour;
  cfg.contacts_per_member = 8.0;
  // Campus diurnal rhythm: classes and office hours, quieter evenings.
  cfg.hourly_intensity = {0.04, 0.02, 0.02, 0.02, 0.02, 0.05,  // 00-05
                          0.20, 0.50, 0.90, 1.00, 1.00, 0.90,  // 06-11
                          1.00, 1.00, 1.00, 0.90, 0.80, 0.70,  // 12-17
                          0.50, 0.40, 0.30, 0.20, 0.10, 0.06}; // 18-23
  cfg.seed = seed;
  return cfg;
}

}  // namespace bsub::trace
