// A single pairwise contact in a human-contact trace.
#pragma once

#include <cstdint>

#include "util/time.h"

namespace bsub::trace {

/// Node identifier within a trace; dense in [0, node_count).
using NodeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = UINT32_MAX;

/// One sighting: nodes `a` and `b` were within radio range during
/// [start, end). Undirected; by convention a < b after normalization.
struct Contact {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  util::Time start = 0;
  util::Time end = 0;

  util::Time duration() const { return end - start; }

  friend bool operator==(const Contact&, const Contact&) = default;
};

}  // namespace bsub::trace
