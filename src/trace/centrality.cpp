#include "trace/centrality.h"

#include <algorithm>

namespace bsub::trace {

std::vector<double> degree_centrality(const ContactTrace& trace) {
  auto deg = trace.degrees();
  std::vector<double> c(deg.size(), 0.0);
  if (trace.node_count() < 2) return c;
  double denom = static_cast<double>(trace.node_count() - 1);
  for (std::size_t i = 0; i < deg.size(); ++i) {
    c[i] = static_cast<double>(deg[i]) / denom;
  }
  return c;
}

std::vector<double> contact_centrality(const ContactTrace& trace) {
  auto counts = trace.contact_counts();
  std::vector<double> c(counts.size(), 0.0);
  double total = 0.0;
  for (std::size_t n : counts) total += static_cast<double>(n);
  if (total == 0.0) return c;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    c[i] = static_cast<double>(counts[i]) / total;
  }
  return c;
}

std::pair<double, double> centrality_range(const std::vector<double>& c) {
  if (c.empty()) return {0.0, 0.0};
  auto [mn, mx] = std::minmax_element(c.begin(), c.end());
  return {*mn, *mx};
}

}  // namespace bsub::trace
