#include "routing/spray.h"

namespace bsub::routing {

void SprayProtocol::on_start(const sim::ScenarioInfo& scenario,
                             const workload::Workload& workload,
                             metrics::Collector& collector) {
  workload_ = &workload;
  collector_ = &collector;
  produced_.assign(scenario.node_count, {});
  relayed_.assign(scenario.node_count, {});
  produced_expiry_.assign(scenario.node_count, {});
}

void SprayProtocol::on_message_created(const workload::Message& msg,
                                       util::Time /*now*/) {
  auto& hp = collector_->hot_path();
  if (naive_purge_) {
    produced_[msg.producer].emplace(
        msg.id, SourceMessage{std::make_shared<const workload::Message>(msg),
                              copies_});
    ++hp.payload_copies_made;
  } else {
    produced_[msg.producer].emplace(
        msg.id, SourceMessage{sim::borrow_message(msg), copies_});
    ++hp.payload_copies_avoided;
  }
  produced_expiry_[msg.producer].add(msg.expiry(), msg.id);
}

void SprayProtocol::on_contact(trace::NodeId a, trace::NodeId b,
                               util::Time now, util::Time /*duration*/,
                               sim::Link& link) {
  purge(a, now);
  purge(b, now);
  // Deliveries first (they satisfy consumers directly), then sprays.
  deliver(a, b, now, link);
  deliver(b, a, now, link);
  spray(a, b, now, link);
  spray(b, a, now, link);
}

void SprayProtocol::spray(trace::NodeId producer, trace::NodeId peer,
                          util::Time now, sim::Link& link) {
  for (auto it = produced_[producer].begin();
       it != produced_[producer].end();) {
    SourceMessage& sm = it->second;
    const workload::Message& msg = *sm.msg;
    // The delivered-guard (same as deliver()'s): a peer that already
    // received this message holds the payload — re-sending it would
    // double-charge forwardings/bytes and burn a spray copy that could
    // still reach an unserved node.
    if (sm.copies_left == 0 || relayed_[peer].contains(msg.id) ||
        msg.producer == peer || collector_->delivered(msg.id, peer)) {
      ++it;
      continue;
    }
    if (!link.try_send(msg.size_bytes)) break;
    collector_->record_forwarding(msg);
    if (naive_purge_) {
      relayed_[peer].add(msg);  // reference: deep copy per sprayed replica
    } else {
      relayed_[peer].add(sm.msg);  // share the producer's payload
    }
    // A spray copy that lands on its consumer is also a delivery.
    if (workload_->is_interested(peer, msg.key)) {
      collector_->record_delivery(msg, peer, now, /*interested=*/true);
    }
    if (--sm.copies_left == 0) {
      it = produced_[producer].erase(it);
    } else {
      ++it;
    }
  }
}

void SprayProtocol::deliver(trace::NodeId holder, trace::NodeId consumer,
                            util::Time now, sim::Link& link) {
  // Producer-held messages deliver directly too (and do not spend copies).
  for (const auto& [id, sm] : produced_[holder]) {
    if (!workload_->is_interested(consumer, sm.msg->key) ||
        sm.msg->producer == consumer) {
      continue;
    }
    if (collector_->delivered(id, consumer)) continue;
    if (!link.try_send(sm.msg->size_bytes)) return;
    collector_->record_forwarding(*sm.msg);
    collector_->record_delivery(*sm.msg, consumer, now, /*interested=*/true);
  }
  for (const auto& [id, msg] : relayed_[holder]) {
    if (!workload_->is_interested(consumer, msg->key) ||
        msg->producer == consumer) {
      continue;
    }
    if (collector_->delivered(id, consumer)) continue;
    if (!link.try_send(msg->size_bytes)) return;
    collector_->record_forwarding(*msg);
    collector_->record_delivery(*msg, consumer, now, /*interested=*/true);
  }
}

void SprayProtocol::purge(trace::NodeId node, util::Time now) {
  if (naive_purge_) {
    std::erase_if(produced_[node], [now](const auto& kv) {
      return kv.second.msg->expired_at(now);
    });
    relayed_[node].purge_expired_scan(now);
    return;
  }
  auto& hp = collector_->hot_path();
  sim::ExpiryIndex& idx = produced_expiry_[node];
  if (!idx.due(now)) {
    ++hp.purge_scans_skipped;
  } else {
    ++hp.purge_scans_run;
    auto& buffer = produced_[node];
    idx.pop_due(now, [&](workload::MessageId id) {
      auto it = buffer.find(id);
      if (it != buffer.end() && it->second.msg->expired_at(now)) {
        buffer.erase(it);
      }
    });
  }
  relayed_[node].purge_expired(now);
}

void SprayProtocol::on_end(util::Time /*now*/) {
  auto& hp = collector_->hot_path();
  for (const sim::MessageStore& store : relayed_) {
    const sim::MessageStore::Stats& s = store.stats();
    hp.purge_scans_skipped += s.purges_skipped;
    hp.purge_scans_run += s.purges_scanned;
    hp.payload_copies_avoided += s.shared_adds;
    hp.payload_copies_made += s.copied_adds;
  }
}

}  // namespace bsub::routing
