#include "routing/pull.h"

#include <cassert>

namespace bsub::routing {

std::size_t pull_announce_wire_size(const workload::Workload& workload,
                                    trace::NodeId consumer) {
  std::size_t bytes = 0;
  for (workload::KeyId k : workload.interests_of(consumer)) {
    bytes += workload.keys().name(k).size();
  }
  return bytes;
}

void PullProtocol::on_start(const sim::ScenarioInfo& scenario,
                            const workload::Workload& workload,
                            metrics::Collector& collector) {
  workload_ = &workload;
  collector_ = &collector;
  produced_.assign(scenario.node_count, {});
  // Interests are set here and never change during a run; a mid-run
  // interest change would have to come back through on_start, which
  // re-invalidates every cached announce size.
  announce_bytes_.assign(scenario.node_count, kAnnounceUnknown);
}

void PullProtocol::on_message_created(const workload::Message& msg,
                                      util::Time /*now*/) {
  if (naive_purge_) {
    produced_[msg.producer].add(msg);  // reference: deep copy
  } else {
    // The simulator hands a reference into the workload's stable message
    // table; producers borrow it instead of copying.
    produced_[msg.producer].add(sim::borrow_message(msg));
  }
}

void PullProtocol::on_contact(trace::NodeId a, trace::NodeId b, util::Time now,
                              util::Time /*duration*/, sim::Link& link) {
  if (naive_purge_) {
    produced_[a].purge_expired_scan(now);
    produced_[b].purge_expired_scan(now);
  } else {
    produced_[a].purge_expired(now);
    produced_[b].purge_expired(now);
  }
  pull(a, b, now, link);
  pull(b, a, now, link);
}

void PullProtocol::on_end(util::Time /*now*/) {
  auto& hp = collector_->hot_path();
  for (const sim::MessageStore& store : produced_) {
    const sim::MessageStore::Stats& s = store.stats();
    hp.purge_scans_skipped += s.purges_skipped;
    hp.purge_scans_run += s.purges_scanned;
    hp.payload_copies_avoided += s.shared_adds;
    hp.payload_copies_made += s.copied_adds;
  }
}

void PullProtocol::pull(trace::NodeId consumer, trace::NodeId producer,
                        util::Time now, sim::Link& link) {
  // The consumer announces its interests: raw key strings. The size is a
  // pure function of the consumer's (static) interest set, so it is
  // computed once per consumer, not once per contact.
  std::size_t announce_bytes;
  if (naive_purge_) {
    // Reference path: recompute from the raw strings every contact.
    announce_bytes = pull_announce_wire_size(*workload_, consumer);
  } else {
    std::uint32_t& cached = announce_bytes_[consumer];
    auto& hp = collector_->hot_path();
    if (cached == kAnnounceUnknown) {
      cached =
          static_cast<std::uint32_t>(pull_announce_wire_size(*workload_,
                                                             consumer));
      ++hp.encode_cache_misses;
    } else {
      ++hp.encode_cache_hits;
    }
    assert(cached == pull_announce_wire_size(*workload_, consumer) &&
           "cached announce size diverged from the wire-size formula");
    announce_bytes = cached;
  }
  if (!link.try_send(announce_bytes)) return;
  collector_->record_control_bytes(announce_bytes);

  for (const auto& [id, msg] : produced_[producer]) {
    if (!workload_->is_interested(consumer, msg->key)) continue;
    if (collector_->delivered(id, consumer)) continue;
    if (!link.try_send(msg->size_bytes)) break;
    collector_->record_forwarding(*msg);
    collector_->record_delivery(*msg, consumer, now, /*interested=*/true);
  }
}

}  // namespace bsub::routing
