#include "routing/pull.h"

namespace bsub::routing {

void PullProtocol::on_start(const trace::ContactTrace& trace,
                            const workload::Workload& workload,
                            metrics::Collector& collector) {
  workload_ = &workload;
  collector_ = &collector;
  produced_.assign(trace.node_count(), {});
}

void PullProtocol::on_message_created(const workload::Message& msg,
                                      util::Time /*now*/) {
  produced_[msg.producer].add(msg);
}

void PullProtocol::on_contact(trace::NodeId a, trace::NodeId b, util::Time now,
                              util::Time /*duration*/, sim::Link& link) {
  produced_[a].purge_expired(now);
  produced_[b].purge_expired(now);
  pull(a, b, now, link);
  pull(b, a, now, link);
}

void PullProtocol::pull(trace::NodeId consumer, trace::NodeId producer,
                        util::Time now, sim::Link& link) {
  // The consumer announces its interests: raw key strings.
  std::size_t announce_bytes = 0;
  for (workload::KeyId k : workload_->interests_of(consumer)) {
    announce_bytes += workload_->keys().name(k).size();
  }
  if (!link.try_send(announce_bytes)) return;
  collector_->record_control_bytes(announce_bytes);

  for (const auto& [id, msg] : produced_[producer]) {
    if (!workload_->is_interested(consumer, msg.key)) continue;
    if (collector_->delivered(id, consumer)) continue;
    if (!link.try_send(msg.size_bytes)) break;
    collector_->record_forwarding(msg);
    collector_->record_delivery(msg, consumer, now, /*interested=*/true);
  }
}

}  // namespace bsub::routing
