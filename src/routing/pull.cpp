#include "routing/pull.h"

namespace bsub::routing {

void PullProtocol::on_start(const sim::ScenarioInfo& scenario,
                            const workload::Workload& workload,
                            metrics::Collector& collector) {
  workload_ = &workload;
  collector_ = &collector;
  produced_.assign(scenario.node_count, {});
}

void PullProtocol::on_message_created(const workload::Message& msg,
                                      util::Time /*now*/) {
  if (naive_purge_) {
    produced_[msg.producer].add(msg);  // reference: deep copy
  } else {
    // The simulator hands a reference into the workload's stable message
    // table; producers borrow it instead of copying.
    produced_[msg.producer].add(sim::borrow_message(msg));
  }
}

void PullProtocol::on_contact(trace::NodeId a, trace::NodeId b, util::Time now,
                              util::Time /*duration*/, sim::Link& link) {
  if (naive_purge_) {
    produced_[a].purge_expired_scan(now);
    produced_[b].purge_expired_scan(now);
  } else {
    produced_[a].purge_expired(now);
    produced_[b].purge_expired(now);
  }
  pull(a, b, now, link);
  pull(b, a, now, link);
}

void PullProtocol::on_end(util::Time /*now*/) {
  auto& hp = collector_->hot_path();
  for (const sim::MessageStore& store : produced_) {
    const sim::MessageStore::Stats& s = store.stats();
    hp.purge_scans_skipped += s.purges_skipped;
    hp.purge_scans_run += s.purges_scanned;
    hp.payload_copies_avoided += s.shared_adds;
    hp.payload_copies_made += s.copied_adds;
  }
}

void PullProtocol::pull(trace::NodeId consumer, trace::NodeId producer,
                        util::Time now, sim::Link& link) {
  // The consumer announces its interests: raw key strings.
  std::size_t announce_bytes = 0;
  for (workload::KeyId k : workload_->interests_of(consumer)) {
    announce_bytes += workload_->keys().name(k).size();
  }
  if (!link.try_send(announce_bytes)) return;
  collector_->record_control_bytes(announce_bytes);

  for (const auto& [id, msg] : produced_[producer]) {
    if (!workload_->is_interested(consumer, msg->key)) continue;
    if (collector_->delivered(id, consumer)) continue;
    if (!link.try_send(msg->size_bytes)) break;
    collector_->record_forwarding(*msg);
    collector_->record_delivery(*msg, consumer, now, /*interested=*/true);
  }
}

}  // namespace bsub::routing
