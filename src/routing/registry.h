// Registration of the baseline routing protocols (PUSH, PULL, SPRAY)
// into a sim::ProtocolRegistry. The registry mechanism lives in sim/; this
// unit owns the baseline entries so their parameter surfaces stay next to
// the implementations they configure. B-SUB registers from core
// (core::register_bsub_protocol); core::make_protocol_registry() aggregates
// both into the full table.
#pragma once

#include "sim/protocol_registry.h"

namespace bsub::routing {

/// Adds PUSH, PULL, and SPRAY to `registry`.
///
/// Accepted parameters (all optional):
///   PUSH:  reference=<bool>           naive full-scan purge reference path
///   PULL:  reference=<bool>
///   SPRAY: copies=<u32 >= 1>          spray budget L (default 3)
///          reference=<bool>
void register_baseline_protocols(sim::ProtocolRegistry& registry);

}  // namespace bsub::routing
