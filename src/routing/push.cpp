#include "routing/push.h"

#include <algorithm>

namespace bsub::routing {

void PushProtocol::on_start(const sim::ScenarioInfo& scenario,
                            const workload::Workload& workload,
                            metrics::Collector& collector) {
  workload_ = &workload;
  collector_ = &collector;
  buffers_.assign(scenario.node_count, {});
  seen_.assign(scenario.node_count, nullptr);
  seen_words_ = (workload.messages().size() + 63) / 64;
  expiry_.assign(scenario.node_count, {});
}

void PushProtocol::mark_seen(trace::NodeId node, workload::MessageId id) {
  std::uint64_t* bits = seen_[node];
  if (bits == nullptr) {
    bits = seen_pool_.acquire_array<std::uint64_t>(seen_words_);
    std::fill(bits, bits + seen_words_, 0);
    seen_[node] = bits;
  }
  bits[id >> 6] |= std::uint64_t{1} << (id & 63);
}

void PushProtocol::on_message_created(const workload::Message& msg,
                                      util::Time /*now*/) {
  buffers_[msg.producer].push_back(msg.id);
  mark_seen(msg.producer, msg.id);
  expiry_[msg.producer].add(msg.expiry(), msg.id);
}

void PushProtocol::on_contact(trace::NodeId a, trace::NodeId b, util::Time now,
                              util::Time /*duration*/, sim::Link& link) {
  purge(a, now);
  purge(b, now);
  transfer(a, b, now, link);
  transfer(b, a, now, link);
}

void PushProtocol::transfer(trace::NodeId from, trace::NodeId to,
                            util::Time now, sim::Link& link) {
  const auto& messages = workload_->messages();
  for (workload::MessageId id : buffers_[from]) {
    if (seen(to, id)) continue;
    const workload::Message& msg = messages[id];
    if (!link.try_send(msg.size_bytes)) break;
    collector_->record_forwarding(msg);
    mark_seen(to, id);
    buffers_[to].push_back(id);
    if (!naive_purge_) expiry_[to].add(msg.expiry(), id);
    if (workload_->is_interested(to, msg.key)) {
      collector_->record_delivery(msg, to, now, /*interested=*/true);
    }
  }
}

void PushProtocol::purge(trace::NodeId node, util::Time now) {
  if (!naive_purge_) {
    // Expired copies can only exist once the earliest registered expiry is
    // due; otherwise the scan is provably a no-op and is skipped.
    if (!expiry_[node].due(now)) {
      ++collector_->hot_path().purge_scans_skipped;
      return;
    }
    ++collector_->hot_path().purge_scans_run;
    expiry_[node].drop_due(now);
  }
  const auto& messages = workload_->messages();
  std::erase_if(buffers_[node], [&](workload::MessageId id) {
    return messages[id].expired_at(now);
  });
}

}  // namespace bsub::routing
