// PULL baseline (paper section VII-A): one-hop interest-driven collection.
//
// A node only collects messages it is interested in, and only from direct
// neighbors' own productions — no relaying ever happens. PULL is the
// overhead lower bound but pays in delivery ratio and delay.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/message_store.h"
#include "sim/protocol.h"

namespace bsub::routing {

/// Exact wire size of `consumer`'s interest announcement: the raw key
/// strings, back to back — sum of |name(k)| over interests_of(consumer).
/// The named formula (style of bloom's encoded_*_wire_size) so the cached
/// per-consumer size below has a ground truth to be asserted against.
std::size_t pull_announce_wire_size(const workload::Workload& workload,
                                    trace::NodeId consumer);

class PullProtocol final : public sim::Protocol {
 public:
  /// `naive_purge` selects the full-scan purge and deep-copy admission (the
  /// differential-test reference) over the expiry-index fast path.
  explicit PullProtocol(bool naive_purge = false)
      : naive_purge_(naive_purge) {}

  using sim::Protocol::on_start;
  void on_start(const sim::ScenarioInfo& scenario,
                const workload::Workload& workload,
                metrics::Collector& collector) override;
  void on_message_created(const workload::Message& msg,
                          util::Time now) override;
  void on_contact(trace::NodeId a, trace::NodeId b, util::Time now,
                  util::Time duration, sim::Link& link) override;
  void on_end(util::Time now) override;
  const char* name() const override { return "PULL"; }
  /// All run state lives in per-node vectors; collector tallies commute.
  bool parallel_contacts_safe() const override { return true; }

 private:
  /// `consumer` pulls matching messages produced by `producer`.
  void pull(trace::NodeId consumer, trace::NodeId producer, util::Time now,
            sim::Link& link);

  bool naive_purge_;
  const workload::Workload* workload_ = nullptr;
  metrics::Collector* collector_ = nullptr;
  std::vector<sim::MessageStore> produced_;  // each node's own messages

  /// Cached per-consumer announce size (pull_announce_wire_size), filled
  /// lazily on a consumer's first pull. Interests are fixed after on_start —
  /// the only interest-change point — which resets every slot to the
  /// sentinel; an assert re-checks the formula on every cached use in debug
  /// builds. The naive reference path keeps recomputing from the raw
  /// strings each contact (the differential tests compare the two).
  static constexpr std::uint32_t kAnnounceUnknown = UINT32_MAX;
  std::vector<std::uint32_t> announce_bytes_;
};

}  // namespace bsub::routing
