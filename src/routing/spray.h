// Spray-and-Wait-style baseline (Spyropoulos et al., adapted to pub-sub).
//
// Interest-OBLIVIOUS replication with interest-aware delivery: the producer
// hands copies of each message to the first L distinct nodes it meets
// (regardless of their interests); each relay then delivers its copy to any
// consumer whose interest key matches exactly, one hop, and never re-sprays.
//
// This is not in the paper; it is the natural ablation between PUSH
// (replicate to everyone) and B-SUB (replicate only to brokers whose relay
// filter matches): it shows what TCBF-guided copy *placement* buys over
// blind placement at the same copy budget.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/message_store.h"
#include "sim/protocol.h"

namespace bsub::routing {

class SprayProtocol final : public sim::Protocol {
 public:
  /// `copies` is the spray budget L per message (the paper's C-limit analog,
  /// default matching B-SUB's 3).
  explicit SprayProtocol(std::uint32_t copies = 3) : copies_(copies) {}

  void on_start(const trace::ContactTrace& trace,
                const workload::Workload& workload,
                metrics::Collector& collector) override;
  void on_message_created(const workload::Message& msg,
                          util::Time now) override;
  void on_contact(trace::NodeId a, trace::NodeId b, util::Time now,
                  util::Time duration, sim::Link& link) override;
  const char* name() const override { return "SPRAY"; }

 private:
  struct SourceMessage {
    workload::Message msg;
    std::uint32_t copies_left;
  };

  /// Producer side: spray copies of own messages to the peer.
  void spray(trace::NodeId producer, trace::NodeId peer, util::Time now,
             sim::Link& link);
  /// Any holder (producer or relay) delivers exact-match messages.
  void deliver(trace::NodeId holder, trace::NodeId consumer, util::Time now,
               sim::Link& link);
  void purge(trace::NodeId node, util::Time now);

  std::uint32_t copies_;
  const workload::Workload* workload_ = nullptr;
  metrics::Collector* collector_ = nullptr;
  std::vector<std::map<workload::MessageId, SourceMessage>> produced_;
  std::vector<sim::MessageStore> relayed_;
};

}  // namespace bsub::routing
