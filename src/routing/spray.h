// Spray-and-Wait-style baseline (Spyropoulos et al., adapted to pub-sub).
//
// Interest-OBLIVIOUS replication with interest-aware delivery: the producer
// hands copies of each message to the first L distinct nodes it meets
// (regardless of their interests); each relay then delivers its copy to any
// consumer whose interest key matches exactly, one hop, and never re-sprays.
//
// This is not in the paper; it is the natural ablation between PUSH
// (replicate to everyone) and B-SUB (replicate only to brokers whose relay
// filter matches): it shows what TCBF-guided copy *placement* buys over
// blind placement at the same copy budget.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "sim/expiry_index.h"
#include "sim/message_store.h"
#include "sim/protocol.h"

namespace bsub::routing {

class SprayProtocol final : public sim::Protocol {
 public:
  /// `copies` is the spray budget L per message (the paper's C-limit analog,
  /// default matching B-SUB's 3). `naive_purge` selects the full-scan purge
  /// and deep-copy admission (the differential-test reference).
  explicit SprayProtocol(std::uint32_t copies = 3, bool naive_purge = false)
      : copies_(copies), naive_purge_(naive_purge) {}

  using sim::Protocol::on_start;
  void on_start(const sim::ScenarioInfo& scenario,
                const workload::Workload& workload,
                metrics::Collector& collector) override;
  void on_message_created(const workload::Message& msg,
                          util::Time now) override;
  void on_contact(trace::NodeId a, trace::NodeId b, util::Time now,
                  util::Time duration, sim::Link& link) override;
  void on_end(util::Time now) override;
  const char* name() const override { return "SPRAY"; }
  /// All run state lives in per-node vectors; collector tallies commute.
  bool parallel_contacts_safe() const override { return true; }

 private:
  struct SourceMessage {
    sim::MessageRef msg;  ///< borrowed from the workload's message table
    std::uint32_t copies_left;
  };

  /// Producer side: spray copies of own messages to the peer.
  void spray(trace::NodeId producer, trace::NodeId peer, util::Time now,
             sim::Link& link);
  /// Any holder (producer or relay) delivers exact-match messages.
  void deliver(trace::NodeId holder, trace::NodeId consumer, util::Time now,
               sim::Link& link);
  void purge(trace::NodeId node, util::Time now);

  std::uint32_t copies_;
  bool naive_purge_;
  const workload::Workload* workload_ = nullptr;
  metrics::Collector* collector_ = nullptr;
  std::vector<std::map<workload::MessageId, SourceMessage>> produced_;
  std::vector<sim::MessageStore> relayed_;
  /// Expiry gate over produced_ (fast path); stale entries from copy
  /// exhaustion are skipped lazily.
  std::vector<sim::ExpiryIndex> produced_expiry_;
};

}  // namespace bsub::routing
