#include "routing/registry.h"

#include <memory>

#include "routing/pull.h"
#include "routing/push.h"
#include "routing/spray.h"

namespace bsub::routing {

void register_baseline_protocols(sim::ProtocolRegistry& registry) {
  registry.add({
      "PUSH",
      {},
      "epidemic flooding: replicate every message to every encountered node",
      [](sim::ProtocolParams& params) -> std::unique_ptr<sim::Protocol> {
        const bool reference = params.get_bool("reference", false);
        return std::make_unique<PushProtocol>(reference);
      },
  });
  registry.add({
      "PULL",
      {},
      "one-hop interest-driven collection from direct neighbors, no relaying",
      [](sim::ProtocolParams& params) -> std::unique_ptr<sim::Protocol> {
        const bool reference = params.get_bool("reference", false);
        return std::make_unique<PullProtocol>(reference);
      },
  });
  registry.add({
      "SPRAY",
      {},
      "spray-and-wait: producer hands L copies to the first nodes met, "
      "relays deliver one hop",
      [](sim::ProtocolParams& params) -> std::unique_ptr<sim::Protocol> {
        const std::uint32_t copies = params.get_u32("copies", 3, 1);
        const bool reference = params.get_bool("reference", false);
        return std::make_unique<SprayProtocol>(copies, reference);
      },
  });
}

}  // namespace bsub::routing
