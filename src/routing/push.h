// PUSH baseline (paper section VII-A): epidemic flooding.
//
// A node replicates every message it stores to every encountered node that
// does not yet have a copy, subject to the contact's byte budget. PUSH is
// the delivery-ratio/delay upper bound and the overhead worst case.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/expiry_index.h"
#include "sim/protocol.h"
#include "util/pool.h"

namespace bsub::routing {

class PushProtocol final : public sim::Protocol {
 public:
  /// `naive_purge` runs the retained full-scan purge every contact (the
  /// differential-test reference); the default gates purging behind a
  /// per-node expiry index so contacts with nothing expired cost O(1).
  explicit PushProtocol(bool naive_purge = false)
      : naive_purge_(naive_purge) {}

  using sim::Protocol::on_start;
  void on_start(const sim::ScenarioInfo& scenario,
                const workload::Workload& workload,
                metrics::Collector& collector) override;
  void on_message_created(const workload::Message& msg,
                          util::Time now) override;
  void on_contact(trace::NodeId a, trace::NodeId b, util::Time now,
                  util::Time duration, sim::Link& link) override;
  const char* name() const override { return "PUSH"; }
  /// All run state lives in per-node vectors; collector tallies commute.
  bool parallel_contacts_safe() const override { return true; }

 private:
  void transfer(trace::NodeId from, trace::NodeId to, util::Time now,
                sim::Link& link);
  void purge(trace::NodeId node, util::Time now);

  // seen(n, id): n already has (or had) a copy; prevents re-replication.
  // Bitmaps are lazy and pooled: a node that never receives a copy costs
  // one null pointer instead of an O(messages) bit vector — the eager
  // layout was O(nodes x messages) up front, the dominant PUSH footprint
  // at city scale.
  bool seen(trace::NodeId node, workload::MessageId id) const {
    const std::uint64_t* bits = seen_[node];
    return bits != nullptr && (bits[id >> 6] >> (id & 63) & 1) != 0;
  }
  void mark_seen(trace::NodeId node, workload::MessageId id);

  bool naive_purge_;
  const workload::Workload* workload_ = nullptr;
  metrics::Collector* collector_ = nullptr;
  // buffers_[n]: ids of live messages held by n, in acquisition order.
  std::vector<std::vector<workload::MessageId>> buffers_;
  std::vector<std::uint64_t*> seen_;
  std::size_t seen_words_ = 0;  ///< bitmap words per node (fixed per run)
  util::BlockPool seen_pool_;
  // expiry_[n]: earliest-expiry gate over buffers_[n]; a purge scans only
  // when some held copy could actually have expired.
  std::vector<sim::ExpiryIndex> expiry_;
};

}  // namespace bsub::routing
