// PUSH baseline (paper section VII-A): epidemic flooding.
//
// A node replicates every message it stores to every encountered node that
// does not yet have a copy, subject to the contact's byte budget. PUSH is
// the delivery-ratio/delay upper bound and the overhead worst case.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/protocol.h"

namespace bsub::routing {

class PushProtocol final : public sim::Protocol {
 public:
  void on_start(const trace::ContactTrace& trace,
                const workload::Workload& workload,
                metrics::Collector& collector) override;
  void on_message_created(const workload::Message& msg,
                          util::Time now) override;
  void on_contact(trace::NodeId a, trace::NodeId b, util::Time now,
                  util::Time duration, sim::Link& link) override;
  const char* name() const override { return "PUSH"; }

 private:
  void transfer(trace::NodeId from, trace::NodeId to, util::Time now,
                sim::Link& link);
  void purge(trace::NodeId node, util::Time now);

  const workload::Workload* workload_ = nullptr;
  metrics::Collector* collector_ = nullptr;
  // buffers_[n]: ids of live messages held by n, in acquisition order.
  std::vector<std::vector<workload::MessageId>> buffers_;
  // seen_[n][id]: n already has (or had) a copy; prevents re-replication.
  std::vector<std::vector<bool>> seen_;
};

}  // namespace bsub::routing
