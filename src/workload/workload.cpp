#include "workload/workload.h"

#include <algorithm>
#include <cassert>
#include <tuple>

#include "trace/centrality.h"

namespace bsub::workload {

Workload::Workload(const trace::ContactTrace& trace, const KeySet& keys,
                   const WorkloadConfig& config)
    : keys_(&keys) {
  assert(config.interests_per_node >= 1);
  const std::size_t n = trace.node_count();
  util::Rng rng(config.seed);
  util::Rng interest_rng = rng.split(1);
  util::Rng schedule_rng = rng.split(2);

  // Interests: `interests_per_node` distinct keys per node, drawn by
  // popularity (rejection on duplicates, capped by the key universe).
  const std::uint32_t per_node = static_cast<std::uint32_t>(
      std::min<std::size_t>(config.interests_per_node, keys.size()));
  interest_offsets_.reserve(n + 1);
  interest_offsets_.push_back(0);
  interest_flat_.reserve(n * per_node);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t start = interest_flat_.size();
    while (interest_flat_.size() - start < per_node) {
      KeyId k = keys.sample(interest_rng);
      if (std::find(interest_flat_.begin() + start, interest_flat_.end(),
                    k) == interest_flat_.end()) {
        interest_flat_.push_back(k);
      }
    }
    interest_offsets_.push_back(
        static_cast<std::uint32_t>(interest_flat_.size()));
  }
  index_subscribers();

  // Rates proportional to centrality; isolated nodes (centrality 0) produce
  // at the base rate, matching the paper's "minimum rate for the smallest
  // centrality" convention.
  centrality_ = trace::degree_centrality(trace);
  double min_positive = 0.0;
  for (double c : centrality_) {
    if (c > 0.0 && (min_positive == 0.0 || c < min_positive)) {
      min_positive = c;
    }
  }
  if (min_positive == 0.0) min_positive = 1.0;

  const util::Time horizon = trace.end_time();
  const util::Time origin = trace.start_time();
  for (std::size_t i = 0; i < n; ++i) {
    double scale = centrality_[i] > 0.0 ? centrality_[i] / min_positive : 1.0;
    double rate_per_ms = config.base_rate_per_minute * scale /
                         static_cast<double>(util::kMinute);
    if (rate_per_ms <= 0.0) continue;
    // Poisson arrivals over [origin, horizon).
    double t = static_cast<double>(origin);
    for (;;) {
      t += schedule_rng.next_exponential(rate_per_ms);
      if (t >= static_cast<double>(horizon)) break;
      Message msg;
      msg.key = keys.sample(schedule_rng);
      msg.producer = static_cast<trace::NodeId>(i);
      msg.size_bytes = static_cast<std::uint32_t>(
          schedule_rng.next_int(1, kMaxMessageBytes));
      msg.created = static_cast<util::Time>(t);
      msg.ttl = config.ttl;
      messages_.push_back(msg);
    }
  }
  sort_and_renumber();
}

Workload::Workload(const KeySet& keys, std::size_t node_count,
                   std::vector<KeyId> interests,
                   std::vector<Message> messages)
    : keys_(&keys), interest_flat_(std::move(interests)),
      messages_(std::move(messages)), centrality_(node_count, 0.0) {
  assert(interest_flat_.size() == node_count);
  // One key per node: the CSR offsets are simply 0..n.
  interest_offsets_.resize(node_count + 1);
  for (std::size_t i = 0; i <= node_count; ++i) {
    interest_offsets_[i] = static_cast<std::uint32_t>(i);
  }
  index_subscribers();
  sort_and_renumber();
}

Workload::Workload(const KeySet& keys, std::size_t node_count,
                   std::vector<std::vector<KeyId>> interests,
                   std::vector<Message> messages)
    : keys_(&keys), messages_(std::move(messages)),
      centrality_(node_count, 0.0) {
  assert(interests.size() == node_count);
  interest_offsets_.reserve(node_count + 1);
  interest_offsets_.push_back(0);
  for (const auto& keys_of_node : interests) {
    assert(!keys_of_node.empty());
    interest_flat_.insert(interest_flat_.end(), keys_of_node.begin(),
                          keys_of_node.end());
    interest_offsets_.push_back(
        static_cast<std::uint32_t>(interest_flat_.size()));
  }
  index_subscribers();
  sort_and_renumber();
}

void Workload::index_subscribers() {
  subscribers_.assign(keys_->size(), {});
  for (std::size_t i = 0; i + 1 < interest_offsets_.size(); ++i) {
    for (KeyId k : interests_of(static_cast<trace::NodeId>(i))) {
      assert(k < keys_->size());
      subscribers_[k].push_back(static_cast<trace::NodeId>(i));
    }
  }
}

void Workload::sort_and_renumber() {
  std::sort(messages_.begin(), messages_.end(),
            [](const Message& x, const Message& y) {
              return std::tie(x.created, x.id) < std::tie(y.created, y.id);
            });
  for (std::size_t i = 0; i < messages_.size(); ++i) {
    messages_[i].id = static_cast<MessageId>(i);
  }
}

bool Workload::is_interested(trace::NodeId node, KeyId key) const {
  const std::span<const KeyId> keys_of_node = interests_of(node);
  return std::find(keys_of_node.begin(), keys_of_node.end(), key) !=
         keys_of_node.end();
}

std::uint64_t Workload::expected_deliveries() const {
  std::uint64_t total = 0;
  for (const Message& m : messages_) {
    for (trace::NodeId s : subscribers_[m.key]) {
      if (s != m.producer) ++total;
    }
  }
  return total;
}

}  // namespace bsub::workload
