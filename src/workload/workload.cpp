#include "workload/workload.h"

#include <algorithm>
#include <cassert>
#include <tuple>

#include "trace/centrality.h"

namespace bsub::workload {

Workload::Workload(const trace::ContactTrace& trace, const KeySet& keys,
                   const WorkloadConfig& config)
    : keys_(&keys) {
  assert(config.interests_per_node >= 1);
  const std::size_t n = trace.node_count();
  util::Rng rng(config.seed);
  util::Rng interest_rng = rng.split(1);
  util::Rng schedule_rng = rng.split(2);

  // Interests: `interests_per_node` distinct keys per node, drawn by
  // popularity (rejection on duplicates, capped by the key universe).
  const std::uint32_t per_node = static_cast<std::uint32_t>(
      std::min<std::size_t>(config.interests_per_node, keys.size()));
  interests_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    while (interests_[i].size() < per_node) {
      KeyId k = keys.sample(interest_rng);
      if (std::find(interests_[i].begin(), interests_[i].end(), k) ==
          interests_[i].end()) {
        interests_[i].push_back(k);
      }
    }
  }
  index_subscribers();

  // Rates proportional to centrality; isolated nodes (centrality 0) produce
  // at the base rate, matching the paper's "minimum rate for the smallest
  // centrality" convention.
  centrality_ = trace::degree_centrality(trace);
  double min_positive = 0.0;
  for (double c : centrality_) {
    if (c > 0.0 && (min_positive == 0.0 || c < min_positive)) {
      min_positive = c;
    }
  }
  if (min_positive == 0.0) min_positive = 1.0;

  const util::Time horizon = trace.end_time();
  const util::Time origin = trace.start_time();
  for (std::size_t i = 0; i < n; ++i) {
    double scale = centrality_[i] > 0.0 ? centrality_[i] / min_positive : 1.0;
    double rate_per_ms = config.base_rate_per_minute * scale /
                         static_cast<double>(util::kMinute);
    if (rate_per_ms <= 0.0) continue;
    // Poisson arrivals over [origin, horizon).
    double t = static_cast<double>(origin);
    for (;;) {
      t += schedule_rng.next_exponential(rate_per_ms);
      if (t >= static_cast<double>(horizon)) break;
      Message msg;
      msg.key = keys.sample(schedule_rng);
      msg.producer = static_cast<trace::NodeId>(i);
      msg.size_bytes = static_cast<std::uint32_t>(
          schedule_rng.next_int(1, kMaxMessageBytes));
      msg.created = static_cast<util::Time>(t);
      msg.ttl = config.ttl;
      messages_.push_back(msg);
    }
  }
  sort_and_renumber();
}

Workload::Workload(const KeySet& keys, std::size_t node_count,
                   std::vector<KeyId> interests,
                   std::vector<Message> messages)
    : Workload(keys, node_count,
               [&] {
                 std::vector<std::vector<KeyId>> multi(interests.size());
                 for (std::size_t i = 0; i < interests.size(); ++i) {
                   multi[i] = {interests[i]};
                 }
                 return multi;
               }(),
               std::move(messages)) {}

Workload::Workload(const KeySet& keys, std::size_t node_count,
                   std::vector<std::vector<KeyId>> interests,
                   std::vector<Message> messages)
    : keys_(&keys), interests_(std::move(interests)),
      messages_(std::move(messages)), centrality_(node_count, 0.0) {
  assert(interests_.size() == node_count);
  for ([[maybe_unused]] const auto& keys_of_node : interests_) {
    assert(!keys_of_node.empty());
  }
  index_subscribers();
  sort_and_renumber();
}

void Workload::index_subscribers() {
  subscribers_.assign(keys_->size(), {});
  for (std::size_t i = 0; i < interests_.size(); ++i) {
    for (KeyId k : interests_[i]) {
      assert(k < keys_->size());
      subscribers_[k].push_back(static_cast<trace::NodeId>(i));
    }
  }
}

void Workload::sort_and_renumber() {
  std::sort(messages_.begin(), messages_.end(),
            [](const Message& x, const Message& y) {
              return std::tie(x.created, x.id) < std::tie(y.created, y.id);
            });
  for (std::size_t i = 0; i < messages_.size(); ++i) {
    messages_[i].id = static_cast<MessageId>(i);
  }
}

bool Workload::is_interested(trace::NodeId node, KeyId key) const {
  const auto& keys_of_node = interests_[node];
  return std::find(keys_of_node.begin(), keys_of_node.end(), key) !=
         keys_of_node.end();
}

std::uint64_t Workload::expected_deliveries() const {
  std::uint64_t total = 0;
  for (const Message& m : messages_) {
    for (trace::NodeId s : subscribers_[m.key]) {
      if (s != m.producer) ++total;
    }
  }
  return total;
}

}  // namespace bsub::workload
