#include "workload/keys.h"

#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace bsub::workload {

KeySet::KeySet(std::vector<KeyInfo> keys) : keys_(std::move(keys)) {
  if (keys_.empty()) throw std::invalid_argument("KeySet: empty key list");
  weights_.reserve(keys_.size());
  hashes_.reserve(keys_.size());
  double total = 0.0;
  for (const KeyInfo& k : keys_) {
    if (k.weight < 0.0) throw std::invalid_argument("KeySet: negative weight");
    weights_.push_back(k.weight);
    hashes_.push_back(util::hash_pair(k.name));
    total += k.weight;
  }
  if (total <= 0.0) throw std::invalid_argument("KeySet: zero total weight");
}

KeyId KeySet::sample(util::Rng& rng) const {
  return rng.next_weighted(weights_);
}

double KeySet::average_key_length() const {
  return static_cast<double>(total_key_bytes()) /
         static_cast<double>(keys_.size());
}

std::size_t KeySet::total_key_bytes() const {
  std::size_t total = 0;
  for (const KeyInfo& k : keys_) total += k.name.size();
  return total;
}

KeySet twitter_trend_keys() {
  // Table II, spaces removed, as published.
  std::vector<KeyInfo> keys = {
      {"NewMoon", 0.132},
      {"Twitter'sNew", 0.103},
      {"funnybutnotcool", 0.0887},
      {"openwebawards", 0.0739},
  };
  // The 34 unpublished keys: period-plausible trends from Nov 2009, with a
  // Zipf(0.8) tail renormalized to the remaining probability mass.
  static const char* kTail[] = {
      "TigerWoods",      "AdamLambert",     "TaylorSwift",
      "TaylorLautner",   "JanetJackson",    "MichaelJackson",
      "ThisIsIt",        "Twilight",        "KristenStewart",
      "RobertPattinson", "KanyeWest",       "LadyGaga",
      "BadRomance",      "Thanksgiving",    "BlackFriday",
      "CyberMonday",     "ClimateGate",     "Copenhagen15",
      "HealthCareBill",  "SwineFlu",        "H1N1vaccine",
      "XboxLive",        "ModernWarfare2",  "LeftForDead2",
      "AssassinsCreed2", "GoogleWave",      "ChromeOS",
      "DroidDoes",       "iPhone3GS",       "PremierLeague",
      "Yankees",         "WorldSeries",     "MondayNight",
      "BalloonBoy",
  };
  constexpr std::size_t kTailCount = std::size(kTail);
  double top4 = 0.0;
  for (const KeyInfo& k : keys) top4 += k.weight;
  const double tail_mass = 1.0 - top4;

  double zipf_total = 0.0;
  for (std::size_t r = 0; r < kTailCount; ++r) {
    zipf_total += 1.0 / std::pow(static_cast<double>(r + 5), 0.8);
  }
  for (std::size_t r = 0; r < kTailCount; ++r) {
    double w = tail_mass / std::pow(static_cast<double>(r + 5), 0.8) /
               zipf_total;
    keys.push_back({kTail[r], w});
  }
  assert(keys.size() == 38);
  return KeySet(std::move(keys));
}

}  // namespace bsub::workload
