// Messages exchanged in the pub-sub system (paper section V-A).
//
// A message's content is identified by a single key; bodies are small (the
// paper assumes Twitter-like posts of at most 140 bytes).
#pragma once

#include <cstdint>

#include "trace/contact.h"
#include "util/time.h"
#include "workload/keys.h"

namespace bsub::workload {

/// Unique message identifier, dense per simulation run.
using MessageId = std::uint64_t;

/// Maximum message body size (Twitter post limit the paper adopts).
inline constexpr std::size_t kMaxMessageBytes = 140;

struct Message {
  MessageId id = 0;
  KeyId key = 0;
  trace::NodeId producer = trace::kInvalidNode;
  std::uint32_t size_bytes = 0;     ///< body size, uniform in [1, 140]
  util::Time created = 0;
  util::Time ttl = 0;               ///< lifetime from creation (= max delay)

  util::Time expiry() const { return created + ttl; }
  bool expired_at(util::Time now) const { return now >= expiry(); }
};

}  // namespace bsub::workload
