// The Twitter-trend key universe (paper section VII-A, Table II).
//
// The paper collected 38 trending-topic keys from the Twitter Trend API for
// the week of 16-22 Nov 2009 and published the top four with their weights
// (spaces removed): NewMoon 0.132, Twitter'sNew 0.103, funnybutnotcool
// 0.0887, openwebawards 0.0739. The remaining 34 keys are not listed; we
// substitute period-plausible trend strings whose weights follow a Zipf tail
// renormalized so the whole distribution sums to one, keeping the published
// average key length of ~11.5 bytes.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/hash.h"
#include "util/rng.h"

namespace bsub::workload {

/// Index into a KeySet.
using KeyId = std::size_t;

struct KeyInfo {
  std::string name;
  double weight = 0.0;  ///< selection probability; sums to 1 across the set
};

/// A fixed universe of content keys with a popularity distribution.
class KeySet {
 public:
  explicit KeySet(std::vector<KeyInfo> keys);

  std::size_t size() const { return keys_.size(); }
  const KeyInfo& operator[](KeyId id) const { return keys_[id]; }
  const std::string& name(KeyId id) const { return keys_[id].name; }
  double weight(KeyId id) const { return keys_[id].weight; }

  /// Interned Bloom hash of the key name, precomputed once at construction
  /// so protocol hot paths never re-hash key strings.
  const util::HashPair& hash(KeyId id) const { return hashes_[id]; }

  /// Draws a key id proportionally to the weights.
  KeyId sample(util::Rng& rng) const;

  /// Mean key length in bytes (the paper reports 11.5 for its set).
  double average_key_length() const;

  /// Total bytes of all key strings.
  std::size_t total_key_bytes() const;

  auto begin() const { return keys_.begin(); }
  auto end() const { return keys_.end(); }

 private:
  std::vector<KeyInfo> keys_;
  std::vector<double> weights_;        // cached for sampling
  std::vector<util::HashPair> hashes_; // interned Bloom hashes
};

/// The 38-key Twitter-trend set described above. Keys are sorted by weight,
/// descending; ids 0-3 are the published Table II entries.
KeySet twitter_trend_keys();

}  // namespace bsub::workload
