// Workload construction (paper section VII-A).
//
// Ties a contact trace to the pub-sub population:
//   - every node is interested in exactly one key, drawn from the key
//     popularity distribution;
//   - every node produces messages at a rate proportional to its degree
//     centrality: R_i = R_hat * C_i / C_hat, where R_hat = 1 message per
//     30 minutes is the rate of the least-central node (centrality C_hat);
//   - message keys are drawn from the same popularity distribution, sizes
//     uniform in [1, 140] bytes;
//   - the whole schedule is materialized up front so that protocol runs are
//     deterministic and directly comparable across protocols.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "trace/trace.h"
#include "util/rng.h"
#include "util/time.h"
#include "workload/keys.h"
#include "workload/message.h"

namespace bsub::workload {

struct WorkloadConfig {
  /// Base production rate R_hat for the minimum-centrality node.
  double base_rate_per_minute = 1.0 / 30.0;
  /// Message TTL (= maximum tolerable delay), applied to every message.
  util::Time ttl = 20 * util::kHour;
  /// Distinct interests per node. The paper's simulation uses 1; section
  /// V-A notes the multi-key extension is straightforward, and the B-SUB
  /// filters handle it natively (a genuine filter holds several keys).
  std::uint32_t interests_per_node = 1;
  std::uint64_t seed = 7;
};

/// A fully materialized workload over a trace.
class Workload {
 public:
  Workload(const trace::ContactTrace& trace, const KeySet& keys,
           const WorkloadConfig& config);

  /// Explicit construction for custom scenarios: `interests[n]` is node n's
  /// single key; `messages` need not be sorted (they will be, and
  /// re-numbered with dense ids in time order).
  Workload(const KeySet& keys, std::size_t node_count,
           std::vector<KeyId> interests, std::vector<Message> messages);

  /// Explicit construction with multiple interests per node (each inner
  /// vector must be non-empty).
  Workload(const KeySet& keys, std::size_t node_count,
           std::vector<std::vector<KeyId>> interests,
           std::vector<Message> messages);

  const KeySet& keys() const { return *keys_; }

  std::size_t node_count() const { return interest_offsets_.size() - 1; }

  /// The node's primary interest (the first of its keys).
  KeyId interest_of(trace::NodeId node) const {
    return interest_flat_[interest_offsets_[node]];
  }

  /// All keys the node subscribes to (>= 1). Subscriptions are stored
  /// CSR-style (one offset array over one flat key array) so a node costs
  /// 4 bytes of index instead of a vector header plus its own heap block.
  std::span<const KeyId> interests_of(trace::NodeId node) const {
    return {interest_flat_.data() + interest_offsets_[node],
            interest_offsets_[node + 1] - interest_offsets_[node]};
  }

  /// True if the node subscribes to the key.
  bool is_interested(trace::NodeId node, KeyId key) const;

  /// Nodes subscribed to a key.
  const std::vector<trace::NodeId>& subscribers_of(KeyId key) const {
    return subscribers_[key];
  }

  /// Messages in creation-time order.
  const std::vector<Message>& messages() const { return messages_; }

  /// Per-node degree centrality used for the rates.
  const std::vector<double>& centrality() const { return centrality_; }

  /// Number of (message, interested consumer) pairs, the delivery-ratio
  /// denominator. A producer is not its own consumer.
  std::uint64_t expected_deliveries() const;

 private:
  void index_subscribers();
  void sort_and_renumber();

  const KeySet* keys_;
  /// CSR subscriptions: node n's keys are
  /// interest_flat_[interest_offsets_[n] .. interest_offsets_[n+1]).
  std::vector<std::uint32_t> interest_offsets_;
  std::vector<KeyId> interest_flat_;
  std::vector<std::vector<trace::NodeId>> subscribers_;
  std::vector<Message> messages_;
  std::vector<double> centrality_;
};

}  // namespace bsub::workload
