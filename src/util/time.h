// Simulation time: integer milliseconds since the start of the trace.
//
// Integer time keeps event ordering exact (no FP drift when comparing event
// timestamps); sub-millisecond precision is never needed for human-contact
// traces whose native resolution is seconds.
#pragma once

#include <cstdint>

namespace bsub::util {

/// Simulation timestamp or duration in milliseconds.
using Time = std::int64_t;

inline constexpr Time kMillisecond = 1;
inline constexpr Time kSecond = 1000 * kMillisecond;
inline constexpr Time kMinute = 60 * kSecond;
inline constexpr Time kHour = 60 * kMinute;
inline constexpr Time kDay = 24 * kHour;

/// Largest representable time; used as "never" / "+infinity".
inline constexpr Time kTimeMax = INT64_MAX;

constexpr double to_seconds(Time t) { return static_cast<double>(t) / kSecond; }
constexpr double to_minutes(Time t) { return static_cast<double>(t) / kMinute; }
constexpr double to_hours(Time t) { return static_cast<double>(t) / kHour; }

constexpr Time from_seconds(double s) {
  return static_cast<Time>(s * static_cast<double>(kSecond));
}
constexpr Time from_minutes(double m) {
  return static_cast<Time>(m * static_cast<double>(kMinute));
}
constexpr Time from_hours(double h) {
  return static_cast<Time>(h * static_cast<double>(kHour));
}

}  // namespace bsub::util
