// Error taxonomy for the ingestion & wire boundary.
//
// Every byte entering the system — contact-trace text, TCBF/BF wire
// encodings, engine frames — is parsed through one of two typed failures:
//
//   ParseError  malformed *text* input (trace files). Carries the 1-based
//               line number plus what the parser expected vs. found.
//   CodecError  malformed *binary* input (byte_io cursor, tcbf_codec,
//               engine/wire). Carries the byte offset of the failure plus
//               expected vs. found.
//
// Both derive from InputError (and transitively std::runtime_error), so
// callers that only care about "the input was bad" catch one type, while
// diagnostics and tests can assert on the structured context. The what()
// string always embeds the context ("... at line 12: expected 4 fields,
// found 3"), so untyped logging stays informative.
//
// bsub::util::DecodeError predates this taxonomy; it is now an alias for
// CodecError, so all existing `catch (const DecodeError&)` sites and tests
// keep working unchanged.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace bsub::util {

/// Root of the input-failure taxonomy. Never thrown directly.
class InputError : public std::runtime_error {
 protected:
  explicit InputError(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed text input (one-record-per-line formats such as trace files).
class ParseError : public InputError {
 public:
  /// `line` is 1-based; 0 means "no specific line" (e.g. a file-level
  /// failure such as an unreadable path or a header/body mismatch).
  ParseError(const std::string& what, std::size_t line = 0,
             std::string expected = {}, std::string found = {});

  std::size_t line() const { return line_; }
  const std::string& expected() const { return expected_; }
  const std::string& found() const { return found_; }

 private:
  std::size_t line_;
  std::string expected_;
  std::string found_;
};

/// Malformed binary input (wire frames, filter encodings, byte cursors).
class CodecError : public InputError {
 public:
  static constexpr std::size_t kNoOffset = static_cast<std::size_t>(-1);

  CodecError(const std::string& what, std::size_t offset = kNoOffset,
             std::string expected = {}, std::string found = {});

  /// Byte offset into the decoded buffer at which the failure was detected,
  /// or kNoOffset when the failure is not positional (e.g. a checksum over
  /// the whole payload).
  std::size_t offset() const { return offset_; }
  const std::string& expected() const { return expected_; }
  const std::string& found() const { return found_; }

 private:
  std::size_t offset_;
  std::string expected_;
  std::string found_;
};

/// Pre-taxonomy name for binary decode failures; kept as an alias so every
/// existing throw/catch site remains valid.
using DecodeError = CodecError;

/// Rejected configuration value (generator parameters, engine knobs):
/// structurally valid input whose *value* is outside the accepted domain —
/// zero nodes, a non-finite duration, a probability outside [0, 1]. Carries
/// the offending field name plus the violated constraint so callers can
/// surface exactly which knob to fix.
class ConfigError : public InputError {
 public:
  ConfigError(const std::string& what, std::string field = {},
              std::string constraint = {});

  const std::string& field() const { return field_; }
  const std::string& constraint() const { return constraint_; }

 private:
  std::string field_;
  std::string constraint_;
};

}  // namespace bsub::util
