// Deterministic pseudo-random number generation.
//
// All randomness in the library flows through Rng so that a simulation run is
// fully reproducible from a single 64-bit seed. The generator is
// xoshiro256** (Blackman & Vigna), seeded via splitmix64 so that nearby seeds
// produce unrelated streams.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace bsub::util {

/// Stateless splitmix64 step; also useful as a cheap integer mixer.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** PRNG with distribution helpers.
///
/// Satisfies UniformRandomBitGenerator, so it also works with <random>
/// distributions, although the built-in helpers below are preferred for
/// reproducibility across standard-library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xB5EEDF17E5ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return UINT64_MAX; }

  /// Raw 64 random bits.
  result_type operator()();

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool next_bool(double p);

  /// Exponentially distributed value with the given rate (mean 1/rate).
  double next_exponential(double rate);

  /// Pareto(xm, alpha): heavy-tailed, support [xm, inf). Used for
  /// inter-contact gaps, which are heavy-tailed in human-mobility traces.
  double next_pareto(double xm, double alpha);

  /// Standard normal via Box-Muller.
  double next_gaussian();

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64).
  std::uint64_t next_poisson(double mean);

  /// Index in [0, weights.size()) drawn proportionally to weights.
  /// Requires a non-empty span with a positive total weight.
  std::size_t next_weighted(std::span<const double> weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Independent child generator; distinct `stream` values give unrelated
  /// sequences. Lets subsystems draw randomness without perturbing each
  /// other's streams.
  Rng split(std::uint64_t stream) const;

 private:
  std::uint64_t s_[4];
};

/// Zipf(s) sampler over ranks {1..n} with exponent s, via precomputed CDF.
/// Used for the tail of the Twitter-trend key popularity distribution.
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double exponent);

  /// Rank in [0, n); rank 0 is the most popular.
  std::size_t sample(Rng& rng) const;

  /// Probability mass of the given rank.
  double pmf(std::size_t rank) const;

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
  std::vector<double> pmf_;
};

}  // namespace bsub::util
