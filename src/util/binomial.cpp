#include "util/binomial.h"

#include <cassert>
#include <cmath>

namespace bsub::util {

namespace {

// std::lgamma writes the process-global `signgam`, which races when sweep
// points evaluate Eq. 5 concurrently. The arguments here are >= 1, where
// gamma is positive, so the sign output of the reentrant form is discarded.
#if defined(__GLIBC__) || defined(__APPLE__)
extern "C" double lgamma_r(double, int*);  // hidden under -std=c++20
#endif

double lgamma_threadsafe(double x) {
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

}  // namespace

double log_binomial_coefficient(std::uint64_t n, std::uint64_t k) {
  if (k > n) return -INFINITY;
  return lgamma_threadsafe(static_cast<double>(n) + 1.0) -
         lgamma_threadsafe(static_cast<double>(k) + 1.0) -
         lgamma_threadsafe(static_cast<double>(n - k) + 1.0);
}

double binomial_pmf(std::uint64_t x, std::uint64_t n, double p) {
  assert(p >= 0.0 && p <= 1.0);
  if (x > n) return 0.0;
  if (p == 0.0) return x == 0 ? 1.0 : 0.0;
  if (p == 1.0) return x == n ? 1.0 : 0.0;
  double lp = log_binomial_coefficient(n, x) +
              static_cast<double>(x) * std::log(p) +
              static_cast<double>(n - x) * std::log1p(-p);
  return std::exp(lp);
}

double binomial_cdf(std::uint64_t x, std::uint64_t n, double p) {
  if (x >= n) return 1.0;
  double acc = 0.0;
  for (std::uint64_t i = 0; i <= x; ++i) acc += binomial_pmf(i, n, p);
  return acc < 1.0 ? acc : 1.0;
}

double expected_min_binomial(std::uint64_t n, double p, std::uint32_t k) {
  assert(k >= 1);
  if (n == 0 || p <= 0.0) return 0.0;
  // E[min] = sum_{t=1..n} P[min >= t]; accumulate the survival function of a
  // single binomial incrementally to keep the whole loop O(n).
  double cdf = binomial_pmf(0, n, p);  // F(0)
  double expectation = 0.0;
  for (std::uint64_t t = 1; t <= n; ++t) {
    double survival = 1.0 - cdf;  // P[X >= t] = 1 - F(t-1)
    if (survival <= 0.0) break;
    expectation += std::pow(survival, static_cast<double>(k));
    cdf += binomial_pmf(t, n, p);
  }
  return expectation;
}

}  // namespace bsub::util
