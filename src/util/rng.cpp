#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace bsub::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t threshold = (0 - bound) % bound;
    while (l < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::next_double(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::next_exponential(double rate) {
  assert(rate > 0.0);
  // -log(1-u) avoids log(0) since next_double() < 1.
  return -std::log1p(-next_double()) / rate;
}

double Rng::next_pareto(double xm, double alpha) {
  assert(xm > 0.0 && alpha > 0.0);
  double u = 1.0 - next_double();  // (0, 1]
  return xm / std::pow(u, 1.0 / alpha);
}

double Rng::next_gaussian() {
  double u1 = 1.0 - next_double();  // (0, 1], keeps log finite
  double u2 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

std::uint64_t Rng::next_poisson(double mean) {
  assert(mean >= 0.0);
  if (mean <= 0.0) return 0;
  if (mean < 64.0) {
    // Knuth's product-of-uniforms method.
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= next_double();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation for large means.
  double x = mean + std::sqrt(mean) * next_gaussian();
  return x < 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

std::size_t Rng::next_weighted(std::span<const double> weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  double r = next_double() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;  // FP slop lands on the last bucket
}

Rng Rng::split(std::uint64_t stream) const {
  std::uint64_t sm = s_[0] ^ rotl(s_[3], 13) ^ (stream * 0xA24BAED4963EE407ULL);
  std::uint64_t seed = splitmix64(sm);
  return Rng(seed);
}

ZipfDistribution::ZipfDistribution(std::size_t n, double exponent) {
  assert(n > 0);
  pmf_.resize(n);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    pmf_[r] = 1.0 / std::pow(static_cast<double>(r + 1), exponent);
    total += pmf_[r];
  }
  double acc = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    pmf_[r] /= total;
    acc += pmf_[r];
    cdf_[r] = acc;
  }
  cdf_.back() = 1.0;
}

std::size_t ZipfDistribution::sample(Rng& rng) const {
  double u = rng.next_double();
  // Binary search for the first CDF entry >= u.
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double ZipfDistribution::pmf(std::size_t rank) const {
  assert(rank < pmf_.size());
  return pmf_[rank];
}

}  // namespace bsub::util
