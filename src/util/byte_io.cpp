#include "util/byte_io.h"

#include <bit>
#include <cassert>
#include <cstring>

namespace bsub::util {

void ByteWriter::put_u8(std::uint8_t v) { buf_.push_back(v); }

void ByteWriter::put_u16(std::uint16_t v) {
  put_u8(static_cast<std::uint8_t>(v));
  put_u8(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::put_u32(std::uint32_t v) {
  put_u16(static_cast<std::uint16_t>(v));
  put_u16(static_cast<std::uint16_t>(v >> 16));
}

void ByteWriter::put_u64(std::uint64_t v) {
  put_u32(static_cast<std::uint32_t>(v));
  put_u32(static_cast<std::uint32_t>(v >> 32));
}

void ByteWriter::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    put_u8(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  put_u8(static_cast<std::uint8_t>(v));
}

void ByteWriter::put_double(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(bits);
}

void ByteWriter::put_bytes(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::put_string(std::string_view s) {
  put_varint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::put_bits(std::uint64_t value, unsigned bits) {
  assert(bits >= 1 && bits <= 64);
  if (bits < 64) value &= (1ULL << bits) - 1;
  // Emit MSB-first, spilling full bytes as they accumulate.
  for (unsigned i = bits; i > 0; --i) {
    bit_acc_ = (bit_acc_ << 1) | ((value >> (i - 1)) & 1ULL);
    if (++bit_count_ == 8) {
      put_u8(static_cast<std::uint8_t>(bit_acc_));
      bit_acc_ = 0;
      bit_count_ = 0;
    }
  }
}

void ByteWriter::flush_bits() {
  if (bit_count_ > 0) {
    put_u8(static_cast<std::uint8_t>(bit_acc_ << (8 - bit_count_)));
    bit_acc_ = 0;
    bit_count_ = 0;
  }
}

void ByteReader::require(std::size_t n) const {
  if (remaining() < n) {
    throw CodecError("byte buffer underflow", pos_,
                     std::to_string(n) + " more byte(s)",
                     std::to_string(remaining()));
  }
}

void ByteReader::expect_end(const char* what) const {
  if (!at_end()) {
    throw CodecError(std::string("trailing bytes after ") + what, pos_,
                     "end of buffer",
                     std::to_string(remaining()) + " byte(s) left");
  }
}

std::span<const std::uint8_t> ByteReader::get_span(std::size_t n) {
  require(n);
  auto s = data_.subspan(pos_, n);
  pos_ += n;
  return s;
}

std::uint8_t ByteReader::get_u8() {
  require(1);
  return data_[pos_++];
}

// Fixed-width reads require the whole field up front, so an underflow
// reports the field's start offset and full size and consumes nothing.
std::uint16_t ByteReader::get_u16() {
  require(2);
  std::uint16_t v = 0;
  for (unsigned i = 0; i < 2; ++i) {
    v = static_cast<std::uint16_t>(v | (std::uint16_t{data_[pos_ + i]} << (8 * i)));
  }
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::get_u32() {
  require(4);
  std::uint32_t v = 0;
  for (unsigned i = 0; i < 4; ++i) {
    v |= std::uint32_t{data_[pos_ + i]} << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::get_u64() {
  require(8);
  std::uint64_t v = 0;
  for (unsigned i = 0; i < 8; ++i) {
    v |= std::uint64_t{data_[pos_ + i]} << (8 * i);
  }
  pos_ += 8;
  return v;
}

std::uint64_t ByteReader::get_varint() {
  std::uint64_t v = 0;
  unsigned shift = 0;
  for (;;) {
    if (shift >= 64) {
      throw CodecError("varint too long", pos_, "at most 10 bytes", {});
    }
    std::uint8_t b = get_u8();
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

double ByteReader::get_double() {
  std::uint64_t bits = get_u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string ByteReader::get_string() {
  std::uint64_t n = get_varint();
  auto s = get_span(static_cast<std::size_t>(n));
  return std::string(reinterpret_cast<const char*>(s.data()), s.size());
}

std::uint64_t ByteReader::get_bits(unsigned bits) {
  assert(bits >= 1 && bits <= 64);
  std::uint64_t v = 0;
  for (unsigned i = 0; i < bits; ++i) {
    if (bit_count_ == 0) {
      bit_acc_ = get_u8();
      bit_count_ = 8;
    }
    v = (v << 1) | ((bit_acc_ >> (bit_count_ - 1)) & 1ULL);
    --bit_count_;
  }
  return v;
}

void ByteReader::align_bits() {
  bit_acc_ = 0;
  bit_count_ = 0;
}

unsigned bits_for(std::uint64_t n) {
  if (n <= 2) return 1;
  return static_cast<unsigned>(std::bit_width(n - 1));
}

}  // namespace bsub::util
