// Pooled storage for lazy per-node protocol state.
//
// The per-node memory floor at city scale is set by what every node pays
// whether or not it ever participates: an idle node must cost a few bytes
// of index, and the real state (relay filters, meeting rings, peer tables)
// must be paid only by the nodes that actually use it — and recycled when
// they stop (demotion, window drain). Two building blocks provide that:
//
//   - ObjectPool<T>: a free-list pool of heavyweight objects (e.g. a relay
//     filter + shadow map) addressed by dense uint32 handles. Backing
//     storage is a ladder of geometrically-growing chunks published through
//     atomics, so dereferencing a handle takes no lock and stays valid
//     while the pool grows. Objects are reset by the *releaser* (via a
//     caller-supplied recycle hook), so acquire is O(1) and a recycled
//     object keeps its heap capacity — re-promotion after demotion reuses
//     the old buffers.
//
//   - BlockPool: a power-of-two size-class slab allocator for small POD
//     arrays (meeting rings, open-addressing tables). Blocks are bump-cut
//     from 64 KiB slabs and recycled through intrusive free lists; nothing
//     is returned to the system until the pool dies, so steady-state churn
//     (ring growth, table rehash) allocates nothing.
//
// Both pools serialize acquire/release behind a mutex: the conflict-batch
// executor runs node-disjoint contacts concurrently, and while each node's
// state is owned by one worker, the pools themselves are shared (exactly
// like the global allocator they replace). Handle dereference takes no
// lock, and a slot is only touched by the worker that owns the node
// holding its handle.
#pragma once

#include <atomic>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace bsub::util {

/// Sentinel handle: "no object".
inline constexpr std::uint32_t kNoPoolHandle = 0xFFFFFFFFu;

template <typename T>
class ObjectPool {
  static_assert(alignof(T) <= __STDCPP_DEFAULT_NEW_ALIGNMENT__);

 public:
  ObjectPool() = default;
  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;

  ~ObjectPool() {
    const std::uint32_t total = total_.load(std::memory_order_acquire);
    for (std::uint32_t h = 0; h < total; ++h) slot(h)->~T();
    for (auto& c : chunks_) {
      delete[] c.load(std::memory_order_acquire);
    }
  }

  /// Returns a handle to a live object: a recycled one when the free list
  /// has a candidate (already reset by release's recycle hook), otherwise a
  /// fresh one constructed from `make()`.
  template <typename Make>
  std::uint32_t acquire(Make&& make) {
    std::uint32_t h;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!free_.empty()) {
        h = free_.back();
        free_.pop_back();
        ++recycled_;
        return h;
      }
      h = total_.load(std::memory_order_relaxed);
      const unsigned c = chunk_of(h);
      if (chunks_[c].load(std::memory_order_relaxed) == nullptr) {
        chunks_[c].store(new std::byte[chunk_elems(c) * sizeof(T)],
                         std::memory_order_release);
      }
      total_.store(h + 1, std::memory_order_release);
    }
    // Constructed outside the lock: the handle is unpublished, so no other
    // worker can touch the slot, and sibling slots have distinct addresses.
    new (slot(h)) T(make());
    return h;
  }

  /// Returns `handle`'s object to the free list. `recycle(obj)` runs first
  /// (outside the lock — the object is still exclusively owned by the
  /// caller) and must leave the object indistinguishable from a fresh one.
  template <typename Recycle>
  void release(std::uint32_t handle, Recycle&& recycle) {
    recycle(*slot(handle));
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(handle);
  }

  T& operator[](std::uint32_t handle) { return *slot(handle); }
  const T& operator[](std::uint32_t handle) const { return *slot(handle); }

  /// Objects ever constructed (live + free).
  std::size_t size() const { return total_.load(std::memory_order_acquire); }
  /// Objects currently parked on the free list.
  std::size_t free_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return free_.size();
  }
  /// Lifetime count of acquires served from the free list.
  std::uint64_t recycled() const {
    std::lock_guard<std::mutex> lock(mu_);
    return recycled_;
  }

 private:
  // Chunk c holds kFirstChunk << c slots; handles map to (chunk, offset)
  // with pure bit math. 28 chunks cover > 2^30 slots.
  static constexpr std::uint32_t kFirstChunk = 8;
  static constexpr unsigned kChunks = 28;

  static unsigned chunk_of(std::uint32_t h) {
    return static_cast<unsigned>(std::bit_width(h + kFirstChunk)) - 4;
  }
  static std::uint32_t chunk_elems(unsigned c) { return kFirstChunk << c; }

  T* slot(std::uint32_t h) const {
    assert(h < total_.load(std::memory_order_acquire));
    const unsigned c = chunk_of(h);
    const std::uint32_t off = h + kFirstChunk - (kFirstChunk << c);
    std::byte* base = chunks_[c].load(std::memory_order_acquire);
    return reinterpret_cast<T*>(base) + off;
  }

  mutable std::mutex mu_;
  std::atomic<std::uint32_t> total_{0};
  std::atomic<std::byte*> chunks_[kChunks] = {};
  std::vector<std::uint32_t> free_;
  std::uint64_t recycled_ = 0;
};

/// Slab-backed size-class allocator for raw blocks of trivially-copyable
/// state. Sizes round up to the next power of two (minimum 16 bytes, so
/// every block is 16-byte aligned off the slab's aligned base); release
/// must pass the same size as acquire.
class BlockPool {
 public:
  static constexpr std::size_t kMinBlock = 16;
  static constexpr std::size_t kSlabBytes = 64 * 1024;

  BlockPool() = default;
  BlockPool(const BlockPool&) = delete;
  BlockPool& operator=(const BlockPool&) = delete;

  void* acquire(std::size_t bytes) {
    const unsigned cls = size_class(bytes);
    const std::size_t block = std::size_t{1} << cls;
    std::lock_guard<std::mutex> lock(mu_);
    if (FreeNode* head = free_[cls]) {
      free_[cls] = head->next;
      return head;
    }
    if (block > kSlabBytes) {
      // Oversize blocks get their own allocation but still recycle through
      // the free list (ownership stays with the pool until destruction).
      oversize_.emplace_back(new std::byte[block]);
      reserved_ += block;
      return oversize_.back().get();
    }
    if (slab_off_ + block > kSlabBytes || slabs_.empty()) {
      slabs_.emplace_back(new std::byte[kSlabBytes]);
      reserved_ += kSlabBytes;
      slab_off_ = 0;
    }
    std::byte* p = slabs_.back().get() + slab_off_;
    slab_off_ += block;
    return p;
  }

  void release(void* p, std::size_t bytes) {
    if (p == nullptr) return;
    const unsigned cls = size_class(bytes);
    FreeNode* node = static_cast<FreeNode*>(p);
    std::lock_guard<std::mutex> lock(mu_);
    node->next = free_[cls];
    free_[cls] = node;
  }

  /// Typed helpers for POD arrays; contents are uninitialized on acquire.
  template <typename T>
  T* acquire_array(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T> &&
                  std::is_trivially_destructible_v<T>);
    static_assert(alignof(T) <= kMinBlock);
    return static_cast<T*>(acquire(count * sizeof(T)));
  }
  template <typename T>
  void release_array(T* p, std::size_t count) {
    release(p, count * sizeof(T));
  }

  /// Total bytes held from the system (slabs + oversize blocks). Monotone:
  /// the pool never returns memory before destruction.
  std::size_t bytes_reserved() const {
    std::lock_guard<std::mutex> lock(mu_);
    return reserved_;
  }

 private:
  struct FreeNode {
    FreeNode* next;
  };
  static constexpr unsigned kClasses = 40;  // up to 2^39-byte blocks

  static unsigned size_class(std::size_t bytes) {
    std::size_t b = bytes < kMinBlock ? kMinBlock : bytes;
    unsigned cls = 4;  // 2^4 == kMinBlock
    while ((std::size_t{1} << cls) < b) ++cls;
    assert(cls < kClasses);
    return cls;
  }

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  std::vector<std::unique_ptr<std::byte[]>> oversize_;
  std::size_t slab_off_ = kSlabBytes;  // force a slab on first acquire
  std::size_t reserved_ = 0;
  FreeNode* free_[kClasses] = {};
};

}  // namespace bsub::util
