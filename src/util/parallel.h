// A small fixed-size thread pool plus index-space parallel-for / map
// helpers, used to run independent experiment sweep points concurrently.
//
// Determinism contract: the helpers only decide *when* each item runs, never
// what it computes — every item must own its state (its own RNG seed,
// simulator, collector). Results are returned in input order, so a parallel
// run is byte-identical to a serial run of the same items.
//
// The BSUB_THREADS environment variable overrides the worker count
// (BSUB_THREADS=1 forces serial execution in-thread, useful for debugging
// and determinism checks).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

namespace bsub::util {

/// Worker count used when callers pass 0: $BSUB_THREADS if set and >= 1,
/// otherwise std::thread::hardware_concurrency() (at least 1).
std::size_t default_thread_count();

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 = default_thread_count()).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a job. A job that throws does not kill its worker: the first
  /// exception of a batch is captured and rethrown by the next wait_idle().
  void submit(std::function<void()> job);

  /// Blocks until the queue is empty and every worker is idle, then
  /// rethrows the first exception any job of the batch threw (if any).
  /// The pool stays usable afterwards: submit/wait_idle cycles can repeat
  /// (one batch-barrier per cycle).
  void wait_idle();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_job_;
  std::condition_variable cv_idle_;
  std::queue<std::function<void()>> jobs_;
  std::exception_ptr first_error_;
  std::size_t active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Calls fn(i) for every i in [0, n) across `threads` workers (0 = default).
/// Runs inline when one worker suffices. The first exception thrown by any
/// fn(i) is rethrown after all work drains.
template <class Fn>
void parallel_for_index(std::size_t n, Fn&& fn, std::size_t threads = 0) {
  if (n == 0) return;
  std::size_t want = threads != 0 ? threads : default_thread_count();
  if (want > n) want = n;
  if (want <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex err_mu;
  std::exception_ptr err;
  {
    ThreadPool pool(want);
    for (std::size_t t = 0; t < want; ++t) {
      pool.submit([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) return;
          try {
            fn(i);
          } catch (...) {
            std::lock_guard<std::mutex> lock(err_mu);
            if (!err) err = std::current_exception();
          }
        }
      });
    }
    pool.wait_idle();
  }
  if (err) std::rethrow_exception(err);
}

/// Maps fn over items, returning results in input order regardless of the
/// execution schedule. The result type must be default-constructible.
template <class T, class Fn>
auto parallel_map(const std::vector<T>& items, Fn&& fn,
                  std::size_t threads = 0)
    -> std::vector<decltype(fn(items[0]))> {
  std::vector<decltype(fn(items[0]))> results(items.size());
  parallel_for_index(
      items.size(), [&](std::size_t i) { results[i] = fn(items[i]); },
      threads);
  return results;
}

}  // namespace bsub::util
