#include "util/hash.h"

#include <cassert>

namespace bsub::util {

std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

std::uint64_t hash64(std::string_view data, std::uint64_t seed) {
  return mix64(fnv1a64(data) ^ mix64(seed));
}

HashPair hash_pair(std::string_view key) {
  std::uint64_t base = fnv1a64(key);
  return HashPair{mix64(base), mix64(base ^ 0x9E3779B97F4A7C15ULL)};
}

IndexArray bloom_indices(std::string_view key, std::uint32_t k,
                         std::size_t m) {
  return bloom_indices(hash_pair(key), k, m);
}

IndexArray bloom_indices(const HashPair& hp, std::uint32_t k, std::size_t m) {
  assert(k <= kMaxHashes);
  IndexArray out;
  for (std::uint32_t i = 0; i < k; ++i) out.push_back(km_index(hp, i, m));
  return out;
}

}  // namespace bsub::util
