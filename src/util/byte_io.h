// Byte-level serialization for the TCBF wire codec and trace files.
//
// Little-endian fixed-width integers plus LEB128 varints, and a bit-packing
// writer used to encode set-bit locations in ceil(log2 m) bits each (paper
// section VI-C).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/errors.h"

namespace bsub::util {

/// Appends primitive values to a growable byte buffer.
class ByteWriter {
 public:
  ByteWriter() = default;

  /// Adopts `buf` as the output buffer (cleared, capacity kept) so encoders
  /// on hot paths can reuse scratch storage instead of allocating fresh
  /// vectors; reclaim it with take().
  explicit ByteWriter(std::vector<std::uint8_t> buf) : buf_(std::move(buf)) {
    buf_.clear();
  }

  void put_u8(std::uint8_t v);
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_varint(std::uint64_t v);
  void put_double(double v);
  void put_bytes(std::span<const std::uint8_t> data);
  void put_string(std::string_view s);  // varint length + bytes

  /// Appends `value` using the low `bits` bits (1..64), MSB-first into a
  /// packing stream. Call `flush_bits()` before writing byte-aligned data.
  void put_bits(std::uint64_t value, unsigned bits);
  void flush_bits();

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::size_t size() const { return buf_.size(); }

  /// Moves the buffer out (for writers constructed over adopted storage).
  std::vector<std::uint8_t> take() && { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
  std::uint64_t bit_acc_ = 0;
  unsigned bit_count_ = 0;
};

/// Bounds-checked cursor over a byte span; every accessor throws CodecError
/// (with the failing byte offset and expected-vs-found sizes) on underflow,
/// so no decode path can ever read past the buffer.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t get_u8();
  std::uint16_t get_u16();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::uint64_t get_varint();
  double get_double();
  std::string get_string();

  /// Slices the next `n` bytes without copying; the cursor advances past
  /// them. The span aliases the underlying buffer.
  std::span<const std::uint8_t> get_span(std::size_t n);

  /// Reads `bits` bits (1..64), MSB-first, from the packing stream.
  /// Call `align_bits()` before resuming byte-aligned reads.
  std::uint64_t get_bits(unsigned bits);
  void align_bits();

  std::size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return remaining() == 0 && bit_count_ == 0; }

  /// Current byte offset from the start of the buffer (for error context).
  std::size_t offset() const { return pos_; }

  /// Throws CodecError("trailing bytes...") unless the cursor consumed the
  /// buffer exactly. Decoders call this last so that a valid prefix followed
  /// by garbage is rejected instead of silently accepted.
  void expect_end(const char* what) const;

 private:
  void require(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::uint64_t bit_acc_ = 0;
  unsigned bit_count_ = 0;
};

/// Number of bits needed to represent values in [0, n); at least 1.
unsigned bits_for(std::uint64_t n);

}  // namespace bsub::util
