// Byte-level serialization for the TCBF wire codec and trace files.
//
// Little-endian fixed-width integers plus LEB128 varints, and a bit-packing
// writer used to encode set-bit locations in ceil(log2 m) bits each (paper
// section VI-C).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace bsub::util {

/// Thrown on malformed input during decoding.
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Appends primitive values to a growable byte buffer.
class ByteWriter {
 public:
  ByteWriter() = default;

  /// Adopts `buf` as the output buffer (cleared, capacity kept) so encoders
  /// on hot paths can reuse scratch storage instead of allocating fresh
  /// vectors; reclaim it with take().
  explicit ByteWriter(std::vector<std::uint8_t> buf) : buf_(std::move(buf)) {
    buf_.clear();
  }

  void put_u8(std::uint8_t v);
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_varint(std::uint64_t v);
  void put_double(double v);
  void put_bytes(std::span<const std::uint8_t> data);
  void put_string(std::string_view s);  // varint length + bytes

  /// Appends `value` using the low `bits` bits (1..64), MSB-first into a
  /// packing stream. Call `flush_bits()` before writing byte-aligned data.
  void put_bits(std::uint64_t value, unsigned bits);
  void flush_bits();

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::size_t size() const { return buf_.size(); }

  /// Moves the buffer out (for writers constructed over adopted storage).
  std::vector<std::uint8_t> take() && { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
  std::uint64_t bit_acc_ = 0;
  unsigned bit_count_ = 0;
};

/// Reads primitive values from a byte span; throws DecodeError on underflow.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t get_u8();
  std::uint16_t get_u16();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::uint64_t get_varint();
  double get_double();
  std::string get_string();

  /// Reads `bits` bits (1..64), MSB-first, from the packing stream.
  /// Call `align_bits()` before resuming byte-aligned reads.
  std::uint64_t get_bits(unsigned bits);
  void align_bits();

  std::size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return remaining() == 0 && bit_count_ == 0; }

 private:
  void require(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  std::uint64_t bit_acc_ = 0;
  unsigned bit_count_ = 0;
};

/// Number of bits needed to represent values in [0, n); at least 1.
unsigned bits_for(std::uint64_t n);

}  // namespace bsub::util
