// Binomial distribution and order-statistic math backing the paper's decay
// factor analysis (section VI-A, Eq. 4-5).
//
// For a key inserted into a TCBF with k hash functions over m bits, each of
// its bits is accidentally hit by other keys. With N other keys in the
// window, the hit count of one bit is Binomial(N, k/m); the key survives
// until its *minimum* counter drains, so the relevant quantity is the
// expected minimum of k iid binomials (Eq. 4).
#pragma once

#include <cstdint>

namespace bsub::util {

/// log(n choose k); exact via lgamma.
double log_binomial_coefficient(std::uint64_t n, std::uint64_t k);

/// P[X = x] for X ~ Binomial(n, p).
double binomial_pmf(std::uint64_t x, std::uint64_t n, double p);

/// P[X <= x] for X ~ Binomial(n, p).
double binomial_cdf(std::uint64_t x, std::uint64_t n, double p);

/// Eq. 4: E[min(X_0..X_{k-1})] for k iid Binomial(n, p) variables, computed
/// as sum_{t>=1} P[min >= t] = sum_{t=1..n} (1 - CDF(t-1))^k.
double expected_min_binomial(std::uint64_t n, double p, std::uint32_t k);

}  // namespace bsub::util
