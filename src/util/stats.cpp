#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bsub::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel-merge formulas.
  double na = static_cast<double>(n_);
  double nb = static_cast<double>(other.n_);
  double delta = other.mean_ - mean_;
  double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return n_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return n_ == 0 ? 0.0 : max_; }

void PercentileTracker::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

double PercentileTracker::percentile(double p) const {
  assert(!samples_.empty());
  assert(p >= 0.0 && p <= 100.0);
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (samples_.size() == 1) return samples_[0];
  double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
}

double PercentileTracker::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  assert(hi > lo && buckets > 0);
}

void Histogram::add(double x) {
  double idx = (x - lo_) / width_;
  std::size_t i;
  if (idx < 0.0) {
    i = 0;
  } else if (idx >= static_cast<double>(counts_.size())) {
    i = counts_.size() - 1;
  } else {
    i = static_cast<std::size_t>(idx);
  }
  ++counts_[i];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

}  // namespace bsub::util
