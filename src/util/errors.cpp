#include "util/errors.h"

namespace bsub::util {

namespace {

std::string format_parse(const std::string& what, std::size_t line,
                         const std::string& expected,
                         const std::string& found) {
  std::string s = what;
  if (line > 0) s += " at line " + std::to_string(line);
  if (!expected.empty() || !found.empty()) {
    s += ": expected " + (expected.empty() ? "?" : expected);
    if (!found.empty()) s += ", found " + found;
  }
  return s;
}

std::string format_codec(const std::string& what, std::size_t offset,
                         const std::string& expected,
                         const std::string& found) {
  std::string s = what;
  if (offset != CodecError::kNoOffset) {
    s += " at offset " + std::to_string(offset);
  }
  if (!expected.empty() || !found.empty()) {
    s += ": expected " + (expected.empty() ? "?" : expected);
    if (!found.empty()) s += ", found " + found;
  }
  return s;
}

std::string format_config(const std::string& what, const std::string& field,
                          const std::string& constraint) {
  std::string s = what;
  if (!field.empty()) s += " for field " + field;
  if (!constraint.empty()) s += ": requires " + constraint;
  return s;
}

}  // namespace

ParseError::ParseError(const std::string& what, std::size_t line,
                       std::string expected, std::string found)
    : InputError(format_parse(what, line, expected, found)),
      line_(line),
      expected_(std::move(expected)),
      found_(std::move(found)) {}

CodecError::CodecError(const std::string& what, std::size_t offset,
                       std::string expected, std::string found)
    : InputError(format_codec(what, offset, expected, found)),
      offset_(offset),
      expected_(std::move(expected)),
      found_(std::move(found)) {}

ConfigError::ConfigError(const std::string& what, std::string field,
                         std::string constraint)
    : InputError(format_config(what, field, constraint)),
      field_(std::move(field)),
      constraint_(std::move(constraint)) {}

}  // namespace bsub::util
