#include "util/parallel.h"

#include <cstdlib>
#include <string>

namespace bsub::util {

std::size_t default_thread_count() {
  if (const char* env = std::getenv("BSUB_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v >= 1) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = threads != 0 ? threads : default_thread_count();
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_job_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.push(std::move(job));
  }
  cv_job_.notify_one();
}

void ThreadPool::wait_idle() {
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_idle_.wait(lock, [this] { return jobs_.empty() && active_ == 0; });
    err = std::exchange(first_error_, nullptr);
  }
  if (err) std::rethrow_exception(err);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_job_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stop_ and drained
      job = std::move(jobs_.front());
      jobs_.pop();
      ++active_;
    }
    std::exception_ptr err;
    try {
      job();
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (err && !first_error_) first_error_ = err;
      --active_;
      if (jobs_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace bsub::util
