// Hashing primitives for Bloom filters.
//
// Bloom-filter bit positions use the Kirsch-Mitzenmacher construction:
// two independent 64-bit hashes (h1, h2) of the key simulate k independent
// hash functions as g_i(x) = h1(x) + i*h2(x) (mod m), which preserves the
// asymptotic false-positive rate of k truly independent functions.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace bsub::util {

/// 64-bit FNV-1a over a byte string.
std::uint64_t fnv1a64(std::string_view data);

/// MurmurHash3 64-bit finalizer; a strong integer mixer.
std::uint64_t mix64(std::uint64_t x);

/// 64-bit hash of a string with a seed (FNV-1a core + mixing).
std::uint64_t hash64(std::string_view data, std::uint64_t seed);

/// The (h1, h2) pair feeding double hashing.
struct HashPair {
  std::uint64_t h1;
  std::uint64_t h2;
};

/// Computes the double-hashing pair for a key.
HashPair hash_pair(std::string_view key);

/// Kirsch-Mitzenmacher: the i-th of k bit positions in a table of m slots.
///
/// h2 is forced odd so that, for power-of-two m, successive probes cycle
/// through all slots instead of a subgroup.
inline std::size_t km_index(const HashPair& hp, std::uint32_t i,
                            std::size_t m) {
  std::uint64_t h2 = hp.h2 | 1ULL;
  return static_cast<std::size_t>((hp.h1 + static_cast<std::uint64_t>(i) * h2) %
                                  m);
}

/// All k bit positions for a key in a table of m slots. Positions may repeat
/// (the paper's analysis also ignores such collisions).
std::vector<std::size_t> bloom_indices(std::string_view key, std::uint32_t k,
                                       std::size_t m);

}  // namespace bsub::util
