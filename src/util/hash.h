// Hashing primitives for Bloom filters.
//
// Bloom-filter bit positions use the Kirsch-Mitzenmacher construction:
// two independent 64-bit hashes (h1, h2) of the key simulate k independent
// hash functions as g_i(x) = h1(x) + i*h2(x) (mod m), which preserves the
// asymptotic false-positive rate of k truly independent functions.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <string_view>

namespace bsub::util {

/// 64-bit FNV-1a over a byte string.
std::uint64_t fnv1a64(std::string_view data);

/// MurmurHash3 64-bit finalizer; a strong integer mixer.
std::uint64_t mix64(std::uint64_t x);

/// 64-bit hash of a string with a seed (FNV-1a core + mixing).
std::uint64_t hash64(std::string_view data, std::uint64_t seed);

/// The (h1, h2) pair feeding double hashing.
struct HashPair {
  std::uint64_t h1;
  std::uint64_t h2;
};

/// Computes the double-hashing pair for a key.
HashPair hash_pair(std::string_view key);

/// Kirsch-Mitzenmacher: the i-th of k bit positions in a table of m slots.
///
/// h2 is forced odd so that, for power-of-two m, successive probes cycle
/// through all slots instead of a subgroup.
inline std::size_t km_index(const HashPair& hp, std::uint32_t i,
                            std::size_t m) {
  std::uint64_t h2 = hp.h2 | 1ULL;
  return static_cast<std::size_t>((hp.h1 + static_cast<std::uint64_t>(i) * h2) %
                                  m);
}

/// Upper bound on k (the wire codec rejects anything above it too), which
/// lets bit-position lists live in fixed-capacity stack storage.
inline constexpr std::uint32_t kMaxHashes = 64;

/// Fixed-capacity list of bit positions: the return type of bloom_indices.
/// Replaces the former std::vector return so the per-call heap allocation on
/// every insert/query disappears.
class IndexArray {
 public:
  IndexArray() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const std::size_t* begin() const { return data_.data(); }
  const std::size_t* end() const { return data_.data() + size_; }
  std::size_t operator[](std::size_t i) const { return data_[i]; }
  void push_back(std::size_t v) { data_[size_++] = v; }

  friend bool operator==(const IndexArray& a, const IndexArray& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  std::array<std::size_t, kMaxHashes> data_{};
  std::size_t size_ = 0;
};

/// All k bit positions for a key in a table of m slots. Positions may repeat
/// (the paper's analysis also ignores such collisions). Requires k <=
/// kMaxHashes.
IndexArray bloom_indices(std::string_view key, std::uint32_t k, std::size_t m);
IndexArray bloom_indices(const HashPair& hp, std::uint32_t k, std::size_t m);

}  // namespace bsub::util
