// Minimal leveled logging for library diagnostics.
//
// Defaults to Warn so that simulations stay quiet; experiment binaries raise
// the level when tracing protocol behavior.
#pragma once

#include <sstream>
#include <string_view>

namespace bsub::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Writes one formatted line to stderr if `level` passes the filter.
void log_message(LogLevel level, std::string_view message);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  (os << ... << args);
  log_message(level, os.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) {
  detail::log_fmt(LogLevel::Debug, args...);
}
template <typename... Args>
void log_info(const Args&... args) {
  detail::log_fmt(LogLevel::Info, args...);
}
template <typename... Args>
void log_warn(const Args&... args) {
  detail::log_fmt(LogLevel::Warn, args...);
}
template <typename... Args>
void log_error(const Args&... args) {
  detail::log_fmt(LogLevel::Error, args...);
}

}  // namespace bsub::util
