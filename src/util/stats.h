// Streaming and batch statistics used by the metrics collectors and the
// benchmark harness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bsub::util {

/// Welford-style running mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const;
  double variance() const;  // sample variance (n-1); 0 when n < 2
  double stddev() const;
  double min() const;  // 0 when empty
  double max() const;  // 0 when empty
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores all samples to answer arbitrary percentile queries.
class PercentileTracker {
 public:
  void add(double x);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Linear-interpolated percentile; p in [0, 100]. Requires non-empty.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  double mean() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);

  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;
  std::uint64_t total() const { return total_; }

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace bsub::util
