// Metrics collection for protocol runs (paper section VII's four metrics):
// delivery ratio, delay of delivered messages, forwardings per delivered
// message, and the false-positive delivery rate — plus byte-level overhead
// accounting used in the memory/bandwidth discussions.
#pragma once

#include <cstdint>
#include <unordered_set>

#include "trace/contact.h"
#include "util/stats.h"
#include "util/time.h"
#include "workload/message.h"

namespace bsub::metrics {

/// Hot-path instrumentation for the contact-loop fast path. These counters
/// describe *how* a run executed (cache hits, skipped scans), never *what*
/// it computed — fast and reference paths produce identical RunResults
/// semantic fields while differing freely here.
struct HotPathStats {
  std::uint64_t purge_scans_skipped = 0;  ///< purges with no due expiry
  std::uint64_t purge_scans_run = 0;      ///< purges that touched storage
  std::uint64_t encode_cache_hits = 0;    ///< wire encodings reused by epoch
  std::uint64_t encode_cache_misses = 0;  ///< wire encodings recomputed
  std::uint64_t payload_copies_avoided = 0;  ///< buffered via shared payload
  std::uint64_t payload_copies_made = 0;     ///< buffered via deep copy

  void merge(const HotPathStats& o) {
    purge_scans_skipped += o.purge_scans_skipped;
    purge_scans_run += o.purge_scans_run;
    encode_cache_hits += o.encode_cache_hits;
    encode_cache_misses += o.encode_cache_misses;
    payload_copies_avoided += o.payload_copies_avoided;
    payload_copies_made += o.payload_copies_made;
  }
};

/// Final numbers for one protocol run.
struct RunResults {
  std::uint64_t messages_created = 0;
  std::uint64_t expected_deliveries = 0;  ///< (msg, interested node) pairs
  std::uint64_t interested_deliveries = 0;
  /// Deliveries attributable to Bloom false positives: handed to an
  /// uninterested consumer, or riding a copy that was falsely injected into
  /// the network by a relay-filter false positive (paper section VI-B).
  std::uint64_t false_deliveries = 0;
  std::uint64_t forwardings = 0;          ///< message-body transmissions
  std::uint64_t message_bytes = 0;
  std::uint64_t control_bytes = 0;        ///< filters / interest reports

  double delivery_ratio = 0.0;            ///< interested / expected
  double mean_delay_minutes = 0.0;        ///< over interested deliveries
  double median_delay_minutes = 0.0;
  double max_delay_minutes = 0.0;
  double forwardings_per_delivery = 0.0;  ///< forwardings / total delivered
  double false_positive_rate = 0.0;       ///< false / total delivered

  /// Execution-shape counters; excluded from semantic-equality comparisons.
  HotPathStats hot_path;
};

/// Accumulates events during a run; protocols report through this.
class Collector {
 public:
  void set_expected(std::uint64_t messages_created,
                    std::uint64_t expected_deliveries);

  /// A message body crossed a link (any hop, including final delivery).
  void record_forwarding(const workload::Message& msg);

  /// A message reached `node`. `interested` means the node subscribed to
  /// the message's key (drives delivery ratio and delay); `falsely_injected`
  /// marks copies whose path into the network was created by a relay-filter
  /// false positive (drives the FPR metric even when the receiving consumer
  /// was genuinely interested). Duplicate (msg, node) pairs are ignored.
  void record_delivery(const workload::Message& msg, trace::NodeId node,
                       util::Time now, bool interested,
                       bool falsely_injected = false);

  /// True if (msg, node) was already delivered — lets protocols skip
  /// retransmissions to satisfied consumers.
  bool delivered(workload::MessageId id, trace::NodeId node) const;

  void record_control_bytes(std::uint64_t bytes) { control_bytes_ += bytes; }

  /// Mutable hot-path counters; protocols bump these directly (or merge
  /// per-store stats in on_end).
  HotPathStats& hot_path() { return hot_path_; }
  const HotPathStats& hot_path() const { return hot_path_; }

  RunResults results() const;

 private:
  static std::uint64_t pair_key(workload::MessageId id, trace::NodeId node) {
    return (id << 20) ^ static_cast<std::uint64_t>(node);
  }

  std::uint64_t messages_created_ = 0;
  std::uint64_t expected_deliveries_ = 0;
  std::uint64_t forwardings_ = 0;
  std::uint64_t message_bytes_ = 0;
  std::uint64_t control_bytes_ = 0;
  std::uint64_t interested_deliveries_ = 0;
  std::uint64_t false_deliveries_ = 0;
  std::unordered_set<std::uint64_t> delivered_pairs_;
  util::PercentileTracker delay_minutes_;
  HotPathStats hot_path_;
};

}  // namespace bsub::metrics
