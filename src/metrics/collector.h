// Metrics collection for protocol runs (paper section VII's four metrics):
// delivery ratio, delay of delivered messages, forwardings per delivered
// message, and the false-positive delivery rate — plus byte-level overhead
// accounting used in the memory/bandwidth discussions.
//
// Concurrency model (the parallel-engine determinism contract): the
// collector may be fed from several pool workers at once as long as no two
// concurrent events touch the same node — exactly what the conflict
// scheduler guarantees. Two mechanisms keep N-thread runs byte-identical to
// serial runs:
//   - scalar tallies (forwardings, bytes, hot-path counters) are relaxed
//     atomics: integer sums commute exactly, so any execution order yields
//     the same totals;
//   - order-sensitive state (delivered-pair dedup, delay samples) is
//     partitioned per destination node. A node's deliveries can only happen
//     during that node's own contacts, which every schedule executes in
//     trace order, so each per-node log is deterministic; results() reduces
//     the logs in node-id order, a canonical order shared by serial and
//     parallel runs.
// reserve_nodes() must be called before any cross-thread recording; it
// pre-sizes the per-node partition so the hot path never reallocates.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "trace/contact.h"
#include "util/stats.h"
#include "util/time.h"
#include "workload/message.h"

namespace bsub::metrics {

/// A monotone event counter safe to bump from concurrent pool workers.
/// Relaxed ordering suffices: the counters are pure tallies, read only
/// after the run's final barrier.
class RelaxedCounter {
 public:
  RelaxedCounter() = default;
  RelaxedCounter(const RelaxedCounter&) = delete;
  RelaxedCounter& operator=(const RelaxedCounter&) = delete;

  RelaxedCounter& operator++() {
    v_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator+=(std::uint64_t d) {
    v_.fetch_add(d, std::memory_order_relaxed);
    return *this;
  }
  std::uint64_t load() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Hot-path instrumentation for the contact-loop fast path. These counters
/// describe *how* a run executed (cache hits, skipped scans), never *what*
/// it computed — fast and reference paths produce identical RunResults
/// semantic fields while differing freely here.
struct HotPathStats {
  std::uint64_t purge_scans_skipped = 0;  ///< purges with no due expiry
  std::uint64_t purge_scans_run = 0;      ///< purges that touched storage
  std::uint64_t encode_cache_hits = 0;    ///< wire encodings reused by epoch
  std::uint64_t encode_cache_misses = 0;  ///< wire encodings recomputed
  std::uint64_t payload_copies_avoided = 0;  ///< buffered via shared payload
  std::uint64_t payload_copies_made = 0;     ///< buffered via deep copy

  void merge(const HotPathStats& o) {
    purge_scans_skipped += o.purge_scans_skipped;
    purge_scans_run += o.purge_scans_run;
    encode_cache_hits += o.encode_cache_hits;
    encode_cache_misses += o.encode_cache_misses;
    payload_copies_avoided += o.payload_copies_avoided;
    payload_copies_made += o.payload_copies_made;
  }
};

/// Transport-layer instrumentation for the live runtime (src/net): what the
/// datagram substrate did to move protocol frames. Like HotPathStats these
/// describe *how* traffic flowed (retries, losses, reassembly trouble) —
/// two runs may differ here while computing identical semantic results.
struct TransportStats {
  std::uint64_t datagrams_sent = 0;
  std::uint64_t datagrams_received = 0;
  std::uint64_t datagrams_dropped = 0;     ///< malformed, stale, or refused
  std::uint64_t frames_sent = 0;           ///< protocol frames offered OK
  std::uint64_t frames_received = 0;       ///< delivered in-order to a node
  std::uint64_t frames_retransmitted = 0;  ///< RTO-driven resends
  std::uint64_t frames_dropped = 0;        ///< contact byte budget exhausted
  std::uint64_t session_opens = 0;
  std::uint64_t session_timeouts = 0;      ///< peers declared lost
  std::uint64_t reassembly_failures = 0;   ///< inconsistent fragment sets

  void merge(const TransportStats& o) {
    datagrams_sent += o.datagrams_sent;
    datagrams_received += o.datagrams_received;
    datagrams_dropped += o.datagrams_dropped;
    frames_sent += o.frames_sent;
    frames_received += o.frames_received;
    frames_retransmitted += o.frames_retransmitted;
    frames_dropped += o.frames_dropped;
    session_opens += o.session_opens;
    session_timeouts += o.session_timeouts;
    reassembly_failures += o.reassembly_failures;
  }
};

/// The live (thread-safe) mirror of TransportStats; sessions and runtimes
/// bump these, snapshot() flattens them for RunResults.
struct TransportCounters {
  RelaxedCounter datagrams_sent;
  RelaxedCounter datagrams_received;
  RelaxedCounter datagrams_dropped;
  RelaxedCounter frames_sent;
  RelaxedCounter frames_received;
  RelaxedCounter frames_retransmitted;
  RelaxedCounter frames_dropped;
  RelaxedCounter session_opens;
  RelaxedCounter session_timeouts;
  RelaxedCounter reassembly_failures;

  TransportStats snapshot() const {
    return TransportStats{
        datagrams_sent.load(),      datagrams_received.load(),
        datagrams_dropped.load(),   frames_sent.load(),
        frames_received.load(),     frames_retransmitted.load(),
        frames_dropped.load(),      session_opens.load(),
        session_timeouts.load(),    reassembly_failures.load()};
  }
};

/// The live (thread-safe) mirror of HotPathStats that protocols bump during
/// a run; snapshot() flattens it into the plain struct for RunResults.
struct HotPathCounters {
  RelaxedCounter purge_scans_skipped;
  RelaxedCounter purge_scans_run;
  RelaxedCounter encode_cache_hits;
  RelaxedCounter encode_cache_misses;
  RelaxedCounter payload_copies_avoided;
  RelaxedCounter payload_copies_made;

  HotPathStats snapshot() const {
    return HotPathStats{purge_scans_skipped.load(), purge_scans_run.load(),
                        encode_cache_hits.load(),   encode_cache_misses.load(),
                        payload_copies_avoided.load(),
                        payload_copies_made.load()};
  }
};

/// Final numbers for one protocol run.
struct RunResults {
  std::uint64_t messages_created = 0;
  std::uint64_t expected_deliveries = 0;  ///< (msg, interested node) pairs
  std::uint64_t interested_deliveries = 0;
  /// Deliveries attributable to Bloom false positives: handed to an
  /// uninterested consumer, or riding a copy that was falsely injected into
  /// the network by a relay-filter false positive (paper section VI-B).
  std::uint64_t false_deliveries = 0;
  std::uint64_t forwardings = 0;          ///< message-body transmissions
  std::uint64_t message_bytes = 0;
  std::uint64_t control_bytes = 0;        ///< filters / interest reports

  double delivery_ratio = 0.0;            ///< interested / expected
  double mean_delay_minutes = 0.0;        ///< over interested deliveries
  double median_delay_minutes = 0.0;
  double max_delay_minutes = 0.0;
  double forwardings_per_delivery = 0.0;  ///< forwardings / total delivered
  double false_positive_rate = 0.0;       ///< false / total delivered

  /// Execution-shape counters; excluded from semantic-equality comparisons.
  HotPathStats hot_path;
  /// Transport-shape counters (live runtime runs only; all-zero for the
  /// trace-driven simulator substrates). Also excluded from semantic
  /// equality.
  TransportStats transport;
};

/// Accumulates events during a run; protocols report through this.
class Collector {
 public:
  void set_expected(std::uint64_t messages_created,
                    std::uint64_t expected_deliveries);

  /// Pre-sizes the per-node partition for ids in [0, node_count). Required
  /// before concurrent recording (the partition must not grow under the
  /// workers' feet); optional for serial use, where it grows on demand.
  void reserve_nodes(std::size_t node_count);

  /// A message body crossed a link (any hop, including final delivery).
  void record_forwarding(const workload::Message& msg);

  /// A message reached `node`. `interested` means the node subscribed to
  /// the message's key (drives delivery ratio and delay); `falsely_injected`
  /// marks copies whose path into the network was created by a relay-filter
  /// false positive (drives the FPR metric even when the receiving consumer
  /// was genuinely interested). Duplicate (msg, node) pairs are ignored.
  void record_delivery(const workload::Message& msg, trace::NodeId node,
                       util::Time now, bool interested,
                       bool falsely_injected = false);

  /// True if (msg, node) was already delivered — lets protocols skip
  /// retransmissions to satisfied consumers.
  bool delivered(workload::MessageId id, trace::NodeId node) const;

  void record_control_bytes(std::uint64_t bytes) { control_bytes_ += bytes; }

  /// Mutable hot-path counters; protocols bump these directly (or merge
  /// per-store stats in on_end).
  HotPathCounters& hot_path() { return hot_path_; }
  const HotPathCounters& hot_path() const { return hot_path_; }

  /// Mutable transport counters; the live runtime's sessions bump these.
  TransportCounters& transport() { return transport_; }
  const TransportCounters& transport() const { return transport_; }

  RunResults results() const;

 private:
  /// Everything order-sensitive about one destination node, written only
  /// during that node's own contacts (hence race-free under node-disjoint
  /// batches, and in the node's trace order under any schedule).
  struct NodeLog {
    std::unordered_set<workload::MessageId> delivered;
    std::vector<double> delay_minutes;  ///< interested deliveries, in order
    std::uint64_t interested = 0;
    std::uint64_t false_deliveries = 0;
  };

  NodeLog& node_log(trace::NodeId node);

  /// Logs are lazy: a node's entry is null until its first delivery (the
  /// slot write happens during that node's own contact, so materialization
  /// is race-free under node-disjoint batches, like every per-node slot in
  /// the protocols). Most nodes at city scale never receive anything and
  /// cost one pointer instead of ~96 bytes of empty log.

  std::uint64_t messages_created_ = 0;
  std::uint64_t expected_deliveries_ = 0;
  RelaxedCounter forwardings_;
  RelaxedCounter message_bytes_;
  RelaxedCounter control_bytes_;
  std::vector<std::unique_ptr<NodeLog>> logs_;
  HotPathCounters hot_path_;
  TransportCounters transport_;
};

}  // namespace bsub::metrics
