#include "metrics/collector.h"

#include <algorithm>

namespace bsub::metrics {

void Collector::set_expected(std::uint64_t messages_created,
                             std::uint64_t expected_deliveries) {
  messages_created_ = messages_created;
  expected_deliveries_ = expected_deliveries;
}

void Collector::reserve_nodes(std::size_t node_count) {
  if (logs_.size() < node_count) logs_.resize(node_count);
}

Collector::NodeLog& Collector::node_log(trace::NodeId node) {
  // Serial-only growth: concurrent runs must have called reserve_nodes()
  // first, so this branch never fires while workers hold NodeLog pointers.
  if (node >= logs_.size()) logs_.resize(node + 1);
  auto& log = logs_[node];
  if (log == nullptr) log = std::make_unique<NodeLog>();
  return *log;
}

void Collector::record_forwarding(const workload::Message& msg) {
  ++forwardings_;
  message_bytes_ += msg.size_bytes;
}

void Collector::record_delivery(const workload::Message& msg,
                                trace::NodeId node, util::Time now,
                                bool interested, bool falsely_injected) {
  NodeLog& log = node_log(node);
  if (!log.delivered.insert(msg.id).second) return;
  if (interested) {
    ++log.interested;
    log.delay_minutes.push_back(util::to_minutes(now - msg.created));
  }
  if (!interested || falsely_injected) ++log.false_deliveries;
}

bool Collector::delivered(workload::MessageId id, trace::NodeId node) const {
  if (node >= logs_.size()) return false;
  const NodeLog* log = logs_[node].get();
  return log != nullptr && log->delivered.contains(id);
}

RunResults Collector::results() const {
  RunResults r;
  r.messages_created = messages_created_;
  r.expected_deliveries = expected_deliveries_;
  r.forwardings = forwardings_.load();
  r.message_bytes = message_bytes_.load();
  r.control_bytes = control_bytes_.load();

  // Canonical reduce: node-id order, each node's samples in its own trace
  // order. Serial and parallel runs feed identical per-node logs, so the
  // floating-point sums below associate identically — bit-equal results.
  std::uint64_t total_delivered = 0;
  util::PercentileTracker delays;
  for (const auto& log : logs_) {
    if (log == nullptr) continue;  // no deliveries: contributes nothing
    total_delivered += log->delivered.size();
    r.interested_deliveries += log->interested;
    r.false_deliveries += log->false_deliveries;
    for (double d : log->delay_minutes) delays.add(d);
  }

  if (expected_deliveries_ > 0) {
    r.delivery_ratio = static_cast<double>(r.interested_deliveries) /
                       static_cast<double>(expected_deliveries_);
  }
  if (!delays.empty()) {
    r.mean_delay_minutes = delays.mean();
    r.median_delay_minutes = delays.median();
    r.max_delay_minutes = delays.percentile(100.0);
  }
  if (total_delivered > 0) {
    r.forwardings_per_delivery = static_cast<double>(r.forwardings) /
                                 static_cast<double>(total_delivered);
    r.false_positive_rate = static_cast<double>(r.false_deliveries) /
                            static_cast<double>(total_delivered);
  }
  r.hot_path = hot_path_.snapshot();
  r.transport = transport_.snapshot();
  return r;
}

}  // namespace bsub::metrics
