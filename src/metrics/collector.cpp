#include "metrics/collector.h"

namespace bsub::metrics {

void Collector::set_expected(std::uint64_t messages_created,
                             std::uint64_t expected_deliveries) {
  messages_created_ = messages_created;
  expected_deliveries_ = expected_deliveries;
}

void Collector::record_forwarding(const workload::Message& msg) {
  ++forwardings_;
  message_bytes_ += msg.size_bytes;
}

void Collector::record_delivery(const workload::Message& msg,
                                trace::NodeId node, util::Time now,
                                bool interested, bool falsely_injected) {
  if (!delivered_pairs_.insert(pair_key(msg.id, node)).second) return;
  if (interested) {
    ++interested_deliveries_;
    delay_minutes_.add(util::to_minutes(now - msg.created));
  }
  if (!interested || falsely_injected) ++false_deliveries_;
}

bool Collector::delivered(workload::MessageId id, trace::NodeId node) const {
  return delivered_pairs_.contains(pair_key(id, node));
}

RunResults Collector::results() const {
  RunResults r;
  r.messages_created = messages_created_;
  r.expected_deliveries = expected_deliveries_;
  r.interested_deliveries = interested_deliveries_;
  r.false_deliveries = false_deliveries_;
  r.forwardings = forwardings_;
  r.message_bytes = message_bytes_;
  r.control_bytes = control_bytes_;
  if (expected_deliveries_ > 0) {
    r.delivery_ratio = static_cast<double>(interested_deliveries_) /
                       static_cast<double>(expected_deliveries_);
  }
  if (!delay_minutes_.empty()) {
    r.mean_delay_minutes = delay_minutes_.mean();
    r.median_delay_minutes = delay_minutes_.median();
    r.max_delay_minutes = delay_minutes_.percentile(100.0);
  }
  std::uint64_t total_delivered = delivered_pairs_.size();
  if (total_delivered > 0) {
    r.forwardings_per_delivery = static_cast<double>(forwardings_) /
                                 static_cast<double>(total_delivered);
    r.false_positive_rate = static_cast<double>(false_deliveries_) /
                            static_cast<double>(total_delivered);
  }
  r.hot_path = hot_path_;
  return r;
}

}  // namespace bsub::metrics
