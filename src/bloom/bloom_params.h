// Shared sizing parameters for the Bloom-filter family.
#pragma once

#include <cstddef>
#include <cstdint>

namespace bsub::bloom {

/// Bit-vector length and hash-function count for a filter.
///
/// Paper defaults (section VII-A): a 256-bit vector with 4 hash functions,
/// which yields a worst-case theoretical FPR of ~0.04 at 38 stored keys.
struct BloomParams {
  std::size_t m = 256;   ///< bits in the vector
  std::uint32_t k = 4;   ///< hash functions per key

  friend bool operator==(const BloomParams&, const BloomParams&) = default;
};

}  // namespace bsub::bloom
