// Shared sizing parameters for the Bloom-filter family.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace bsub::bloom {

/// Process-wide monotonic mutation epoch for filters. Every mutating filter
/// operation stamps its filter with a fresh value, so equal epochs imply
/// identical filter contents (a copy shares its source's epoch until either
/// mutates) — which is exactly what the wire-encoding caches key on. Never
/// returns 0; caches use 0 as "empty".
///
/// Thread-safety: the relaxed atomic fetch_add makes epochs unique across
/// concurrent batch workers, which is all the caches rely on — the epoch
/// *values* a run hands out may differ between schedules, but cache hits
/// and misses (and thus every encoded byte) do not.
inline std::uint64_t next_filter_epoch() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// Bit-vector length and hash-function count for a filter.
///
/// Paper defaults (section VII-A): a 256-bit vector with 4 hash functions,
/// which yields a worst-case theoretical FPR of ~0.04 at 38 stored keys.
struct BloomParams {
  std::size_t m = 256;   ///< bits in the vector
  std::uint32_t k = 4;   ///< hash functions per key

  friend bool operator==(const BloomParams&, const BloomParams&) = default;
};

}  // namespace bsub::bloom
