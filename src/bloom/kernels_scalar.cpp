// Portable scalar TCBF kernel: the reference every other backend must match
// bit-for-bit. Sparse merges reuse the original per-bit occupancy walk;
// above the density crossover they fall back to a dense word sweep (the
// fix for the m=1024 a_merge regression, where per-bit extraction cost more
// than streaming the whole counter array once).
#include "bloom/kernels.h"
#include "bloom/kernels_detail.h"

namespace bsub::bloom::kernels {

namespace {

/// Scalar crossover: dense once >= 1/16 of slots are occupied. At the
/// paper's key load (~140 live slots) this keeps m=8192 and up on the
/// sparse walk while m=1024 (~14% occupancy) takes the sweep.
constexpr unsigned kDensityShift = 4;

void a_merge(const MutView& dst, const ConstView& src, double saturation) {
  if (detail::prefer_dense(src, kDensityShift)) {
    detail::dense_a_merge(dst, src, saturation);
  } else {
    detail::sparse_a_merge(dst, src, saturation);
  }
}

void m_merge(const MutView& dst, const ConstView& src, double saturation) {
  if (detail::prefer_dense(src, kDensityShift)) {
    detail::dense_m_merge(dst, src, saturation);
  } else {
    detail::sparse_m_merge(dst, src, saturation);
  }
}

}  // namespace

const Ops& scalar_ops() {
  static constexpr Ops ops = {
      Kind::kScalar,
      "scalar",
      &a_merge,
      &m_merge,
      &detail::scalar_normalize,
      &detail::scalar_popcount,
      &detail::scalar_set_bits_into,
      &detail::scalar_contains,
      &detail::scalar_min_counter,
  };
  return ops;
}

}  // namespace bsub::bloom::kernels
