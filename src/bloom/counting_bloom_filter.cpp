#include "bloom/counting_bloom_filter.h"

#include <cassert>
#include <limits>
#include <stdexcept>

#include "util/hash.h"

namespace bsub::bloom {

CountingBloomFilter::CountingBloomFilter(BloomParams params)
    : params_(params), counters_(params.m, 0) {
  assert(params.m > 0 && params.k > 0);
}

void CountingBloomFilter::insert(std::string_view key) {
  for (std::size_t i : util::bloom_indices(key, params_.k, params_.m)) {
    auto& c = counters_[i];
    if (c < std::numeric_limits<std::uint32_t>::max()) ++c;
  }
}

bool CountingBloomFilter::remove(std::string_view key) {
  if (!contains(key)) return false;
  for (std::size_t i : util::bloom_indices(key, params_.k, params_.m)) {
    auto& c = counters_[i];
    // With double hashing two probes of the same key can collide on one
    // slot; contains() only guarantees positivity, so guard each decrement.
    if (c > 0) --c;
  }
  return true;
}

bool CountingBloomFilter::contains(std::string_view key) const {
  for (std::size_t i : util::bloom_indices(key, params_.k, params_.m)) {
    if (counters_[i] == 0) return false;
  }
  return true;
}

std::uint32_t CountingBloomFilter::counter(std::size_t i) const {
  assert(i < params_.m);
  return counters_[i];
}

std::size_t CountingBloomFilter::popcount() const {
  std::size_t n = 0;
  for (auto c : counters_) n += (c > 0);
  return n;
}

double CountingBloomFilter::fill_ratio() const {
  return static_cast<double>(popcount()) / static_cast<double>(params_.m);
}

void CountingBloomFilter::merge(const CountingBloomFilter& other) {
  if (params_ != other.params_) {
    throw std::invalid_argument(
        "CountingBloomFilter::merge: parameter mismatch");
  }
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    std::uint64_t sum = static_cast<std::uint64_t>(counters_[i]) +
                        other.counters_[i];
    counters_[i] = sum > std::numeric_limits<std::uint32_t>::max()
                       ? std::numeric_limits<std::uint32_t>::max()
                       : static_cast<std::uint32_t>(sum);
  }
}

BloomFilter CountingBloomFilter::to_bloom_filter() const {
  BloomFilter bf(params_);
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (counters_[i] > 0) bf.set_bit(i);
  }
  return bf;
}

void CountingBloomFilter::clear() {
  for (auto& c : counters_) c = 0;
}

}  // namespace bsub::bloom
