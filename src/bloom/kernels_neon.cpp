// NEON TCBF kernel (aarch64, where Advanced SIMD is architecturally
// guaranteed — no runtime feature probe needed, the dispatcher just prefers
// this backend when the TU exists).
//
// Mirrors the AVX2 backend's blocked structure on 128-bit lanes: one
// occupancy byte = one 64-byte counter block = four float64x2 lanes.
// Element-wise IEEE sub/add/min/max only — bit-identical to the scalar
// reference (counters are never NaN or -0.0, so min/max tie handling and
// the mask-and idiom below cannot be observed).
#if defined(__aarch64__)

#include <arm_neon.h>

#include <bit>
#include <cstdint>

#include "bloom/kernels.h"
#include "bloom/kernels_detail.h"

namespace bsub::bloom::kernels {

namespace {

constexpr std::size_t kSlotsPerBlock = 8;

/// Effective counters for one 128-bit lane: (v > base) ? v - base : 0.0.
inline float64x2_t effective2(float64x2_t v, float64x2_t vbase) {
  const uint64x2_t gt = vcgtq_f64(v, vbase);
  const float64x2_t diff = vsubq_f64(v, vbase);
  return vreinterpretq_f64_u64(
      vandq_u64(vreinterpretq_u64_f64(diff), gt));
}

/// Liveness pair (2 bits) of one lane.
inline std::uint64_t live2(float64x2_t eff) {
  const uint64x2_t gt = vcgtq_f64(eff, vdupq_n_f64(0.0));
  return (vgetq_lane_u64(gt, 0) & 1u) | ((vgetq_lane_u64(gt, 1) & 1u) << 1);
}

template <bool kAMerge>
inline std::uint64_t merge_block(double* dst, const double* src,
                                 float64x2_t vbase, float64x2_t vsat) {
  std::uint64_t live = 0;
  for (std::size_t h = 0; h < 4; ++h) {
    const float64x2_t eff = effective2(vld1q_f64(src + 2 * h), vbase);
    const float64x2_t d = vld1q_f64(dst + 2 * h);
    float64x2_t res;
    if constexpr (kAMerge) {
      res = vminq_f64(vaddq_f64(d, eff), vsat);
    } else {
      res = vmaxq_f64(d, vminq_f64(eff, vsat));
    }
    vst1q_f64(dst + 2 * h, res);
    live |= live2(eff) << (2 * h);
  }
  return live;
}

/// Block merge for a source with no pending decay: effective == raw, no
/// liveness lanes to extract — pure load/add-or-max/min/store.
template <bool kAMerge>
inline void merge_block_nobase(double* dst, const double* src,
                               float64x2_t vsat) {
  for (std::size_t h = 0; h < 4; ++h) {
    const float64x2_t s = vld1q_f64(src + 2 * h);
    const float64x2_t d = vld1q_f64(dst + 2 * h);
    float64x2_t res;
    if constexpr (kAMerge) {
      res = vminq_f64(vaddq_f64(d, s), vsat);
    } else {
      res = vmaxq_f64(d, vminq_f64(s, vsat));
    }
    vst1q_f64(dst + 2 * h, res);
  }
}

template <bool kAMerge>
void merge(const MutView& dst, const ConstView& src, double saturation) {
  // No density crossover here: the unit of work is a whole cache line, so
  // the empty-byte test costs one predictable branch when the source is
  // dense and saves the line's entire memory traffic when it is sparse.
  const float64x2_t vsat = vdupq_n_f64(saturation);
  if (src.base == 0.0) {
    // Exact occupancy (bit <=> raw > 0): skipped bytes contribute no live
    // bits, so the word's liveness mask is src.occ[w] verbatim.
    for (std::size_t w = 0; w < src.words; ++w) {
      const std::uint64_t srcw = src.occ[w];
      if (srcw == 0) continue;
      for (std::size_t b = 0; b < kSlotsPerWord / kSlotsPerBlock; ++b) {
        if (((srcw >> (b * kSlotsPerBlock)) & 0xFF) == 0) continue;
        const std::size_t s0 = w * kSlotsPerWord + b * kSlotsPerBlock;
        merge_block_nobase<kAMerge>(dst.raw + s0, src.raw + s0, vsat);
      }
      detail::merge_occupancy_word(dst, w, srcw);
    }
    return;
  }
  const float64x2_t vbase = vdupq_n_f64(src.base);
  for (std::size_t w = 0; w < src.words; ++w) {
    const std::uint64_t srcw = src.occ[w];
    if (srcw == 0) continue;
    std::uint64_t live = 0;
    for (std::size_t b = 0; b < kSlotsPerWord / kSlotsPerBlock; ++b) {
      if (((srcw >> (b * kSlotsPerBlock)) & 0xFF) == 0) continue;
      const std::size_t s0 = w * kSlotsPerWord + b * kSlotsPerBlock;
      live |= merge_block<kAMerge>(dst.raw + s0, src.raw + s0, vbase, vsat)
              << (b * kSlotsPerBlock);
    }
    detail::merge_occupancy_word(dst, w, live);
  }
}

void a_merge(const MutView& dst, const ConstView& src, double saturation) {
  merge<true>(dst, src, saturation);
}

void m_merge(const MutView& dst, const ConstView& src, double saturation) {
  merge<false>(dst, src, saturation);
}

void normalize(const MutView& f, double base) {
  if (base == 0.0) return;
  const float64x2_t vbase = vdupq_n_f64(base);
  for (std::size_t w = 0; w < f.words; ++w) {
    const std::uint64_t occw = f.occ[w];
    if (occw == 0) continue;
    std::uint64_t live = 0;
    for (std::size_t b = 0; b < kSlotsPerWord / kSlotsPerBlock; ++b) {
      if (((occw >> (b * kSlotsPerBlock)) & 0xFF) == 0) continue;
      const std::size_t s0 = w * kSlotsPerWord + b * kSlotsPerBlock;
      std::uint64_t block_live = 0;
      for (std::size_t h = 0; h < 4; ++h) {
        const float64x2_t eff = effective2(vld1q_f64(f.raw + s0 + 2 * h),
                                           vbase);
        vst1q_f64(f.raw + s0 + 2 * h, eff);
        block_live |= live2(eff) << (2 * h);
      }
      live |= block_live << (b * kSlotsPerBlock);
    }
    *f.occupied_bits += static_cast<std::size_t>(std::popcount(live)) -
                        static_cast<std::size_t>(std::popcount(occw));
    f.occ[w] = live;
  }
}

std::size_t popcount(const ConstView& f) {
  const float64x2_t vbase = vdupq_n_f64(f.base);
  std::size_t n = 0;
  for (std::size_t w = 0; w < f.words; ++w) {
    const std::uint64_t occw = f.occ[w];
    if (occw == 0) continue;
    for (std::size_t b = 0; b < kSlotsPerWord / kSlotsPerBlock; ++b) {
      if (((occw >> (b * kSlotsPerBlock)) & 0xFF) == 0) continue;
      const std::size_t s0 = w * kSlotsPerWord + b * kSlotsPerBlock;
      std::uint64_t block_live = 0;
      for (std::size_t h = 0; h < 4; ++h) {
        block_live |= live2(effective2(vld1q_f64(f.raw + s0 + 2 * h), vbase))
                      << (2 * h);
      }
      n += static_cast<std::size_t>(std::popcount(block_live));
    }
  }
  return n;
}

}  // namespace

const Ops& neon_ops() {
  static constexpr Ops ops = {
      Kind::kNeon,
      "neon",
      &a_merge,
      &m_merge,
      &normalize,
      &popcount,
      &detail::scalar_set_bits_into,
      &detail::scalar_contains,
      &detail::scalar_min_counter,
  };
  return ops;
}

}  // namespace bsub::bloom::kernels

#endif  // __aarch64__
