// AVX2 TCBF kernel (x86-64; this TU is compiled with -mavx2 and only ever
// entered after runtime CPUID dispatch confirms the ISA).
//
// Same blocked structure as kernels_blocked.cpp — occupancy word, then
// 8-slot / 64-byte counter block — with each block processed as two 256-bit
// lanes. Arithmetic is element-wise IEEE add/sub/min/max with no
// reassociation and no FMA, so every result is bit-identical to the scalar
// reference:
//   effective(v)  = and(sub(v, base), cmp_gt(v, base))   [exact 0.0 when dead]
//   a_merge slot  = min(dst + eff, saturation)
//   m_merge slot  = max(dst, min(eff, saturation))
// min/max ties return operands with identical bit patterns here (counters
// are never -0.0 or NaN), so tie-breaking order cannot be observed.
#include <immintrin.h>

#include <bit>
#include <cstdint>

#include "bloom/kernels.h"
#include "bloom/kernels_detail.h"

namespace bsub::bloom::kernels {

namespace {

constexpr std::size_t kSlotsPerBlock = 8;

/// Effective counters for one 256-bit lane.
inline __m256d effective4(__m256d v, __m256d vbase) {
  const __m256d gt = _mm256_cmp_pd(v, vbase, _CMP_GT_OQ);
  return _mm256_and_pd(_mm256_sub_pd(v, vbase), gt);
}

/// Liveness nibble (4 bits) of one lane: bit per slot with value > 0.
inline std::uint64_t live4(__m256d eff) {
  const __m256d gt = _mm256_cmp_pd(eff, _mm256_setzero_pd(), _CMP_GT_OQ);
  return static_cast<std::uint64_t>(_mm256_movemask_pd(gt));
}

template <bool kAMerge>
inline std::uint64_t merge_block(double* dst, const double* src,
                                 __m256d vbase, __m256d vsat) {
  std::uint64_t live = 0;
  for (std::size_t h = 0; h < 2; ++h) {
    const __m256d eff = effective4(_mm256_load_pd(src + 4 * h), vbase);
    const __m256d d = _mm256_load_pd(dst + 4 * h);
    __m256d res;
    if constexpr (kAMerge) {
      res = _mm256_min_pd(_mm256_add_pd(d, eff), vsat);
    } else {
      res = _mm256_max_pd(d, _mm256_min_pd(eff, vsat));
    }
    _mm256_store_pd(dst + 4 * h, res);
    live |= live4(eff) << (4 * h);
  }
  return live;
}

/// Block merge for a source with no pending decay: effective == raw, no
/// liveness masks to build — two pure load/add-or-max/min/store lanes.
template <bool kAMerge>
inline void merge_block_nobase(double* dst, const double* src, __m256d vsat) {
  for (std::size_t h = 0; h < 2; ++h) {
    const __m256d s = _mm256_load_pd(src + 4 * h);
    const __m256d d = _mm256_load_pd(dst + 4 * h);
    __m256d res;
    if constexpr (kAMerge) {
      res = _mm256_min_pd(_mm256_add_pd(d, s), vsat);
    } else {
      res = _mm256_max_pd(d, _mm256_min_pd(s, vsat));
    }
    _mm256_store_pd(dst + 4 * h, res);
  }
}

template <bool kAMerge>
void merge(const MutView& dst, const ConstView& src, double saturation) {
  // No density crossover here: the unit of work is a whole cache line, so
  // the empty-byte test costs one predictable branch when the source is
  // dense and saves the line's entire memory traffic when it is sparse.
  const __m256d vsat = _mm256_set1_pd(saturation);
  if (src.base == 0.0) {
    // Exact occupancy (bit <=> raw > 0): skipped bytes contribute no live
    // bits, so the word's liveness mask is src.occ[w] verbatim.
    for (std::size_t w = 0; w < src.words; ++w) {
      const std::uint64_t srcw = src.occ[w];
      if (srcw == 0) continue;
      for (std::size_t b = 0; b < kSlotsPerWord / kSlotsPerBlock; ++b) {
        if (((srcw >> (b * kSlotsPerBlock)) & 0xFF) == 0) continue;
        const std::size_t s0 = w * kSlotsPerWord + b * kSlotsPerBlock;
        merge_block_nobase<kAMerge>(dst.raw + s0, src.raw + s0, vsat);
      }
      detail::merge_occupancy_word(dst, w, srcw);
    }
    return;
  }
  const __m256d vbase = _mm256_set1_pd(src.base);
  for (std::size_t w = 0; w < src.words; ++w) {
    const std::uint64_t srcw = src.occ[w];
    if (srcw == 0) continue;
    std::uint64_t live = 0;
    for (std::size_t b = 0; b < kSlotsPerWord / kSlotsPerBlock; ++b) {
      if (((srcw >> (b * kSlotsPerBlock)) & 0xFF) == 0) continue;
      const std::size_t s0 = w * kSlotsPerWord + b * kSlotsPerBlock;
      live |= merge_block<kAMerge>(dst.raw + s0, src.raw + s0, vbase, vsat)
              << (b * kSlotsPerBlock);
    }
    detail::merge_occupancy_word(dst, w, live);
  }
}

void a_merge(const MutView& dst, const ConstView& src, double saturation) {
  merge<true>(dst, src, saturation);
}

void m_merge(const MutView& dst, const ConstView& src, double saturation) {
  merge<false>(dst, src, saturation);
}

void normalize(const MutView& f, double base) {
  if (base == 0.0) return;
  const __m256d vbase = _mm256_set1_pd(base);
  for (std::size_t w = 0; w < f.words; ++w) {
    const std::uint64_t occw = f.occ[w];
    if (occw == 0) continue;
    std::uint64_t live = 0;
    for (std::size_t b = 0; b < kSlotsPerWord / kSlotsPerBlock; ++b) {
      if (((occw >> (b * kSlotsPerBlock)) & 0xFF) == 0) continue;
      const std::size_t s0 = w * kSlotsPerWord + b * kSlotsPerBlock;
      std::uint64_t block_live = 0;
      for (std::size_t h = 0; h < 2; ++h) {
        const __m256d eff = effective4(_mm256_load_pd(f.raw + s0 + 4 * h),
                                       vbase);
        _mm256_store_pd(f.raw + s0 + 4 * h, eff);
        block_live |= live4(eff) << (4 * h);
      }
      live |= block_live << (b * kSlotsPerBlock);
    }
    *f.occupied_bits += static_cast<std::size_t>(std::popcount(live)) -
                        static_cast<std::size_t>(std::popcount(occw));
    f.occ[w] = live;
  }
}

/// Builds the 64-bit liveness mask of one occupancy word.
inline std::uint64_t live_word(const ConstView& f, std::size_t w,
                               __m256d vbase) {
  const std::uint64_t occw = f.occ[w];
  std::uint64_t live = 0;
  for (std::size_t b = 0; b < kSlotsPerWord / kSlotsPerBlock; ++b) {
    if (((occw >> (b * kSlotsPerBlock)) & 0xFF) == 0) continue;
    const std::size_t s0 = w * kSlotsPerWord + b * kSlotsPerBlock;
    std::uint64_t block_live = 0;
    for (std::size_t h = 0; h < 2; ++h) {
      block_live |=
          live4(effective4(_mm256_load_pd(f.raw + s0 + 4 * h), vbase))
          << (4 * h);
    }
    live |= block_live << (b * kSlotsPerBlock);
  }
  return live;
}

std::size_t popcount(const ConstView& f) {
  const __m256d vbase = _mm256_set1_pd(f.base);
  std::size_t n = 0;
  for (std::size_t w = 0; w < f.words; ++w) {
    if (f.occ[w] == 0) continue;
    n += static_cast<std::size_t>(std::popcount(live_word(f, w, vbase)));
  }
  return n;
}

void set_bits_into(const ConstView& f, std::vector<std::size_t>& out) {
  out.clear();
  out.reserve(f.occupied_bits);
  const __m256d vbase = _mm256_set1_pd(f.base);
  for (std::size_t w = 0; w < f.words; ++w) {
    if (f.occ[w] == 0) continue;
    std::uint64_t live = live_word(f, w, vbase);
    while (live != 0) {
      out.push_back(w * kSlotsPerWord +
                    static_cast<std::size_t>(std::countr_zero(live)));
      live &= live - 1;
    }
  }
}

}  // namespace

const Ops& avx2_ops() {
  // Point queries stay scalar: k is tiny (4 in the paper's config) and
  // vgatherpd latency loses to four dependent scalar loads in practice.
  static constexpr Ops ops = {
      Kind::kAvx2,
      "avx2",
      &a_merge,
      &m_merge,
      &normalize,
      &popcount,
      &set_bits_into,
      &detail::scalar_contains,
      &detail::scalar_min_counter,
  };
  return ops;
}

}  // namespace bsub::bloom::kernels
