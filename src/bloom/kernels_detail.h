// Shared building blocks for the TCBF kernel backends (internal header).
//
// Everything here is the portable scalar formulation; SIMD backends reuse
// these routines for sparse tails and point queries so there is exactly one
// statement of the protocol arithmetic per operation. All results are
// bit-exact: element-wise IEEE add/sub/min/max, no reassociation, no FMA.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "bloom/kernels.h"

namespace bsub::bloom::kernels::detail {

/// Effective (decayed) value of one stored counter. Formulated on the
/// difference (d > 0 exactly when v > base: IEEE subtraction of doubles
/// never rounds a positive difference to zero) so compilers emit a branch-
/// free maxsd — the branchy form mispredicts badly on half-live arrays.
inline double effective(double v, double base) {
  const double d = v - base;
  return d > 0.0 ? d : 0.0;
}

/// Crossover test: walk the source occupancy bitmap bit-by-bit while it is
/// sparse, stream the whole array once when occupancy crosses m >>
/// density_shift (density 2^-shift). Per-bit extraction costs a multiple of
/// a streamed slot visit, so dense sources are cheaper to sweep — this is
/// what the m=1024 a_merge regression came down to.
inline bool prefer_dense(const ConstView& src, unsigned density_shift) {
  return src.occupied_bits >= (src.words * kSlotsPerWord) >> density_shift;
}

/// Sets occupancy bit i, keeping the set-bit count in sync.
inline void mark_occupied(const MutView& dst, std::size_t i) {
  std::uint64_t& word = dst.occ[i / kSlotsPerWord];
  const std::uint64_t bit = 1ULL << (i % kSlotsPerWord);
  *dst.occupied_bits += !(word & bit);
  word |= bit;
}

/// ORs a per-word liveness mask into the destination occupancy word,
/// keeping the set-bit count in sync.
inline void merge_occupancy_word(const MutView& dst, std::size_t w,
                                 std::uint64_t live) {
  const std::uint64_t before = dst.occ[w];
  const std::uint64_t after = before | live;
  *dst.occupied_bits += static_cast<std::size_t>(std::popcount(after)) -
                        static_cast<std::size_t>(std::popcount(before));
  dst.occ[w] = after;
}

// --- sparse per-bit merges (the original representation's loops) -----------

inline void sparse_a_merge(const MutView& dst, const ConstView& src,
                           double saturation) {
  for (std::size_t w = 0; w < src.words; ++w) {
    std::uint64_t bits = src.occ[w];
    while (bits != 0) {
      const std::size_t i = w * kSlotsPerWord +
                            static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      const double add = effective(src.raw[i], src.base);
      if (add <= 0.0) continue;
      const double sum = dst.raw[i] + add;
      dst.raw[i] = sum < saturation ? sum : saturation;
      mark_occupied(dst, i);
    }
  }
}

inline void sparse_m_merge(const MutView& dst, const ConstView& src,
                           double saturation) {
  for (std::size_t w = 0; w < src.words; ++w) {
    std::uint64_t bits = src.occ[w];
    while (bits != 0) {
      const std::size_t i = w * kSlotsPerWord +
                            static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      double v = effective(src.raw[i], src.base);
      if (v > saturation) v = saturation;
      if (v <= 0.0) continue;
      if (v > dst.raw[i]) {
        dst.raw[i] = v;
        mark_occupied(dst, i);
      }
    }
  }
}

// --- dense word sweeps (scalar formulation) --------------------------------
//
// When the source carries no pending decay (base == 0) its occupancy bitmap
// is exact (bit i <=> raw[i] > 0): the liveness mask IS src.occ[w], no
// per-slot comparison needed, and the arithmetic collapses to a pure
// add/min (resp. min/max) loop the compiler auto-vectorizes. Zero source
// slots are no-ops in both formulas (dst + 0 stays dst, which is <= the
// saturation ceiling by the storage invariant; max(dst, 0) stays dst), so
// sweeping them is free of observable effect — bit-identical to the sparse
// walk.

inline void dense_a_merge(const MutView& dst, const ConstView& src,
                          double saturation) {
  if (src.base == 0.0) {
    for (std::size_t w = 0; w < src.words; ++w) {
      const std::uint64_t occw = src.occ[w];
      if (occw == 0) continue;
      const std::size_t s0 = w * kSlotsPerWord;
      for (std::size_t j = 0; j < kSlotsPerWord; ++j) {
        const double sum = dst.raw[s0 + j] + src.raw[s0 + j];
        dst.raw[s0 + j] = sum < saturation ? sum : saturation;
      }
      merge_occupancy_word(dst, w, occw);
    }
    return;
  }
  for (std::size_t w = 0; w < src.words; ++w) {
    if (src.occ[w] == 0) continue;  // occ is a superset of live slots
    std::uint64_t live = 0;
    const std::size_t s0 = w * kSlotsPerWord;
    for (std::size_t j = 0; j < kSlotsPerWord; ++j) {
      const double add = effective(src.raw[s0 + j], src.base);
      const double sum = dst.raw[s0 + j] + add;
      dst.raw[s0 + j] = sum < saturation ? sum : saturation;
      live |= static_cast<std::uint64_t>(add > 0.0) << j;
    }
    merge_occupancy_word(dst, w, live);
  }
}

inline void dense_m_merge(const MutView& dst, const ConstView& src,
                          double saturation) {
  if (src.base == 0.0) {
    for (std::size_t w = 0; w < src.words; ++w) {
      const std::uint64_t occw = src.occ[w];
      if (occw == 0) continue;
      const std::size_t s0 = w * kSlotsPerWord;
      for (std::size_t j = 0; j < kSlotsPerWord; ++j) {
        double v = src.raw[s0 + j];
        if (v > saturation) v = saturation;
        const double d = dst.raw[s0 + j];
        dst.raw[s0 + j] = v > d ? v : d;
      }
      merge_occupancy_word(dst, w, occw);
    }
    return;
  }
  for (std::size_t w = 0; w < src.words; ++w) {
    if (src.occ[w] == 0) continue;
    std::uint64_t live = 0;
    const std::size_t s0 = w * kSlotsPerWord;
    for (std::size_t j = 0; j < kSlotsPerWord; ++j) {
      double v = effective(src.raw[s0 + j], src.base);
      if (v > saturation) v = saturation;
      const double d = dst.raw[s0 + j];
      dst.raw[s0 + j] = v > d ? v : d;
      live |= static_cast<std::uint64_t>(v > 0.0) << j;
    }
    merge_occupancy_word(dst, w, live);
  }
}

// --- normalize / population ------------------------------------------------

inline void scalar_normalize(const MutView& f, double base) {
  if (base == 0.0) return;  // occ bit <=> raw > 0 already holds
  for (std::size_t w = 0; w < f.words; ++w) {
    std::uint64_t bits = f.occ[w];
    while (bits != 0) {
      const std::size_t i = w * kSlotsPerWord +
                            static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      const double v = effective(f.raw[i], base);
      f.raw[i] = v;
      if (v <= 0.0) {
        f.occ[w] &= ~(1ULL << (i % kSlotsPerWord));
        --*f.occupied_bits;
      }
    }
  }
}

inline std::size_t scalar_popcount(const ConstView& f) {
  std::size_t n = 0;
  for (std::size_t w = 0; w < f.words; ++w) {
    std::uint64_t bits = f.occ[w];
    while (bits != 0) {
      const std::size_t i = w * kSlotsPerWord +
                            static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      n += (effective(f.raw[i], f.base) > 0.0);
    }
  }
  return n;
}

inline void scalar_set_bits_into(const ConstView& f,
                                 std::vector<std::size_t>& out) {
  out.clear();
  out.reserve(f.occupied_bits);
  for (std::size_t w = 0; w < f.words; ++w) {
    std::uint64_t bits = f.occ[w];
    while (bits != 0) {
      const std::size_t i = w * kSlotsPerWord +
                            static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      if (effective(f.raw[i], f.base) > 0.0) out.push_back(i);
    }
  }
}

// --- point queries ---------------------------------------------------------

inline bool scalar_contains(const ConstView& f, const std::size_t* idx,
                            std::size_t k) {
  for (std::size_t i = 0; i < k; ++i) {
    if (effective(f.raw[idx[i]], f.base) <= 0.0) return false;
  }
  return true;
}

inline bool scalar_min_counter(const ConstView& f, const std::size_t* idx,
                               std::size_t k, double* out) {
  double min_c = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double c = effective(f.raw[idx[i]], f.base);
    if (c <= 0.0) return false;
    min_c = (i == 0 || c < min_c) ? c : min_c;
  }
  *out = min_c;
  return true;
}

}  // namespace bsub::bloom::kernels::detail
