#include "bloom/fpr.h"

#include <cassert>
#include <cmath>
#include <limits>

#include "util/byte_io.h"

namespace bsub::bloom {

double false_positive_rate_exact(std::uint64_t n, BloomParams params) {
  double m = static_cast<double>(params.m);
  double k = static_cast<double>(params.k);
  double p_bit_set =
      1.0 - std::pow(1.0 - 1.0 / m, k * static_cast<double>(n));
  return std::pow(p_bit_set, k);
}

double false_positive_rate(std::uint64_t n, BloomParams params) {
  double m = static_cast<double>(params.m);
  double k = static_cast<double>(params.k);
  double p_bit_set = 1.0 - std::exp(-k * static_cast<double>(n) / m);
  return std::pow(p_bit_set, k);
}

double expected_set_bits(double n, BloomParams params) {
  double m = static_cast<double>(params.m);
  double k = static_cast<double>(params.k);
  return m * (1.0 - std::exp(-k * n / m));
}

double expected_fill_ratio(double n, BloomParams params) {
  double m = static_cast<double>(params.m);
  double k = static_cast<double>(params.k);
  return 1.0 - std::exp(-k * n / m);
}

double keys_from_fill_ratio(double fill_ratio, BloomParams params) {
  assert(fill_ratio >= 0.0);
  if (fill_ratio >= 1.0) return std::numeric_limits<double>::infinity();
  double m = static_cast<double>(params.m);
  double k = static_cast<double>(params.k);
  return -m * std::log1p(-fill_ratio) / k;
}

double expected_unique_keys(double drawn, double universe) {
  assert(universe > 0.0 && drawn >= 0.0);
  return universe * (1.0 - std::pow(1.0 - 1.0 / universe, drawn));
}

double joint_false_positive_rate(
    std::span<const std::uint64_t> keys_per_filter, BloomParams params) {
  double all_correct = 1.0;
  for (std::uint64_t n : keys_per_filter) {
    all_correct *= 1.0 - false_positive_rate(n, params);
  }
  return 1.0 - all_correct;
}

double joint_false_positive_rate_uniform(double n_total, std::uint32_t h,
                                         BloomParams params) {
  assert(h >= 1);
  double m = static_cast<double>(params.m);
  double k = static_cast<double>(params.k);
  double per_filter =
      std::pow(1.0 - std::exp(-k * (n_total / h) / m),
               k);
  return 1.0 - std::pow(1.0 - per_filter, static_cast<double>(h));
}

double multi_filter_memory_bits(double n_total, std::uint32_t h,
                                BloomParams params) {
  assert(h >= 1);
  double set_bits_per_filter = expected_set_bits(n_total / h, params);
  double bits_per_set_bit =
      8.0 + static_cast<double>(util::bits_for(params.m));
  return static_cast<double>(h) * set_bits_per_filter * bits_per_set_bit;
}

double multi_filter_memory_bytes(double n_total, std::uint32_t h,
                                 BloomParams params) {
  return std::ceil(multi_filter_memory_bits(n_total, h, params) / 8.0);
}

double completely_wasted_ratio(double fpr) {
  assert(fpr >= 0.0 && fpr <= 1.0);
  return fpr * fpr;
}

double partially_useful_ratio(double fpr) {
  assert(fpr >= 0.0 && fpr <= 1.0);
  return fpr * (1.0 - fpr);
}

}  // namespace bsub::bloom
