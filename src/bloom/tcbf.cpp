#include "bloom/tcbf.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/hash.h"

namespace bsub::bloom {

Tcbf::Tcbf(BloomParams params, double initial_counter)
    : params_(params), initial_counter_(initial_counter),
      counters_(params.m, 0.0) {
  assert(params.m > 0 && params.k > 0);
  assert(initial_counter > 0.0);
}

void Tcbf::insert(std::string_view key) {
  if (merged_) {
    throw std::logic_error(
        "Tcbf::insert: cannot insert into a merged filter; insert into a "
        "fresh TCBF and merge it in");
  }
  util::HashPair hp = util::hash_pair(key);
  for (std::uint32_t i = 0; i < params_.k; ++i) {
    double& c = counters_[util::km_index(hp, i, params_.m)];
    if (c == 0.0) c = initial_counter_;
  }
}

void Tcbf::a_merge(const Tcbf& other) {
  if (params_ != other.params_) {
    throw std::invalid_argument("Tcbf::a_merge: parameter mismatch");
  }
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] = std::min(counters_[i] + other.counters_[i],
                            kCounterSaturation);
  }
  merged_ = true;
}

void Tcbf::m_merge(const Tcbf& other) {
  if (params_ != other.params_) {
    throw std::invalid_argument("Tcbf::m_merge: parameter mismatch");
  }
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] = std::max(counters_[i], other.counters_[i]);
  }
  merged_ = true;
}

void Tcbf::decay(double amount) {
  assert(amount >= 0.0);
  if (amount == 0.0) return;
  for (double& c : counters_) {
    if (c > 0.0) c = std::max(0.0, c - amount);
  }
}

bool Tcbf::contains(std::string_view key) const {
  util::HashPair hp = util::hash_pair(key);
  for (std::uint32_t i = 0; i < params_.k; ++i) {
    if (counters_[util::km_index(hp, i, params_.m)] <= 0.0) return false;
  }
  return true;
}

std::optional<double> Tcbf::min_counter(std::string_view key) const {
  util::HashPair hp = util::hash_pair(key);
  double min_c = 0.0;
  bool first = true;
  for (std::uint32_t i = 0; i < params_.k; ++i) {
    double c = counters_[util::km_index(hp, i, params_.m)];
    if (c <= 0.0) return std::nullopt;
    min_c = first ? c : std::min(min_c, c);
    first = false;
  }
  return min_c;
}

double Tcbf::counter(std::size_t i) const {
  assert(i < params_.m);
  return counters_[i];
}

std::size_t Tcbf::popcount() const {
  std::size_t n = 0;
  for (double c : counters_) n += (c > 0.0);
  return n;
}

double Tcbf::fill_ratio() const {
  return static_cast<double>(popcount()) / static_cast<double>(params_.m);
}

std::vector<std::size_t> Tcbf::set_bits() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (counters_[i] > 0.0) out.push_back(i);
  }
  return out;
}

BloomFilter Tcbf::to_bloom_filter() const {
  BloomFilter bf(params_);
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (counters_[i] > 0.0) bf.set_bit(i);
  }
  return bf;
}

void Tcbf::clear() {
  std::fill(counters_.begin(), counters_.end(), 0.0);
  merged_ = false;
}

Tcbf Tcbf::from_counters(BloomParams params, double initial_counter,
                         std::vector<double> counters) {
  if (counters.size() != params.m) {
    throw std::invalid_argument("Tcbf::from_counters: size mismatch");
  }
  Tcbf t(params, initial_counter);
  t.counters_ = std::move(counters);
  t.merged_ = true;
  return t;
}

double preference(const Tcbf& b, const Tcbf& f, std::string_view key) {
  double cb = b.min_counter(key).value_or(0.0);
  std::optional<double> cf = f.min_counter(key);
  if (!cf.has_value()) return cb;  // key absent from f: preference is c_b
  return cb - *cf;
}

}  // namespace bsub::bloom
