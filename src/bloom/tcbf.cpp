#include "bloom/tcbf.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace bsub::bloom {

namespace {

/// Decay accumulates into a single double; fold it back into the array long
/// before the base could cost precision against counters <= saturation.
constexpr double kDecayBaseLimit = 1e9;

}  // namespace

Tcbf::Tcbf(BloomParams params, double initial_counter)
    : params_(params), initial_counter_(initial_counter),
      // Counters are padded to a whole number of occupancy words (64 slots =
      // 8 cache lines per word) so kernels always stream full aligned blocks;
      // the padding slots stay 0.0 and never gain occupancy bits.
      raw_(((params.m + 63) / 64) * 64, 0.0),
      occupied_((params.m + 63) / 64, 0) {
  assert(params.m > 0 && params.k > 0);
  assert(initial_counter > 0.0);
}

void Tcbf::normalize() {
  if (decay_base_ == 0.0) return;  // occ bit <=> raw > 0 already holds
  kernels::active().normalize(mut_view(), decay_base_);
  decay_base_ = 0.0;
}

void Tcbf::insert(std::string_view key) { insert(util::hash_pair(key)); }

void Tcbf::insert(const util::HashPair& hp) {
  if (merged_) {
    throw std::logic_error(
        "Tcbf::insert: cannot insert into a merged filter; insert into a "
        "fresh TCBF and merge it in");
  }
  const double value = std::min(initial_counter_, kCounterSaturation);
  for (std::uint32_t i = 0; i < params_.k; ++i) {
    const std::size_t idx = util::km_index(hp, i, params_.m);
    if (effective(idx) <= 0.0) {
      raw_[idx] = value + decay_base_;
      mark_occupied(idx);
    }
  }
  touch();
}

void Tcbf::a_merge(const Tcbf& other) {
  if (params_ != other.params_) {
    throw std::invalid_argument("Tcbf::a_merge: parameter mismatch");
  }
  normalize();
  // Self-merge is safe: every kernel reads a slot before writing it.
  kernels::active().a_merge(mut_view(), other.const_view(),
                            kCounterSaturation);
  merged_ = true;
  touch();
}

void Tcbf::m_merge(const Tcbf& other) {
  if (params_ != other.params_) {
    throw std::invalid_argument("Tcbf::m_merge: parameter mismatch");
  }
  normalize();
  kernels::active().m_merge(mut_view(), other.const_view(),
                            kCounterSaturation);
  merged_ = true;
  touch();
}

void Tcbf::decay(double amount) {
  assert(amount >= 0.0);
  if (amount == 0.0) return;
  if (occupied_bits_ == 0) return;  // nothing to drain; keep the base at 0
  decay_base_ += amount;
  if (decay_base_ > kDecayBaseLimit) normalize();
  touch();
}

bool Tcbf::contains(std::string_view key) const {
  return contains(util::hash_pair(key));
}

bool Tcbf::contains(const util::HashPair& hp) const {
  std::array<std::size_t, util::kMaxHashes> idx;
  for (std::uint32_t i = 0; i < params_.k; ++i) {
    idx[i] = util::km_index(hp, i, params_.m);
  }
  return kernels::active().contains(const_view(), idx.data(), params_.k);
}

std::optional<double> Tcbf::min_counter(std::string_view key) const {
  return min_counter(util::hash_pair(key));
}

std::optional<double> Tcbf::min_counter(const util::HashPair& hp) const {
  std::array<std::size_t, util::kMaxHashes> idx;
  for (std::uint32_t i = 0; i < params_.k; ++i) {
    idx[i] = util::km_index(hp, i, params_.m);
  }
  double out = 0.0;
  if (!kernels::active().min_counter(const_view(), idx.data(), params_.k,
                                     &out)) {
    return std::nullopt;
  }
  return out;
}

double Tcbf::counter(std::size_t i) const {
  assert(i < params_.m);
  return effective(i);
}

std::size_t Tcbf::popcount() const {
  return kernels::active().popcount(const_view());
}

double Tcbf::fill_ratio() const {
  return static_cast<double>(popcount()) / static_cast<double>(params_.m);
}

bool Tcbf::empty() const {
  return occupied_bits_ == 0 || popcount() == 0;
}

std::vector<std::size_t> Tcbf::set_bits() const {
  std::vector<std::size_t> out;
  set_bits_into(out);
  return out;
}

void Tcbf::set_bits_into(std::vector<std::size_t>& out) const {
  kernels::active().set_bits_into(const_view(), out);
}

BloomFilter Tcbf::to_bloom_filter() const {
  BloomFilter bf(params_);
  std::vector<std::size_t> bits;
  set_bits_into(bits);
  for (const std::size_t i : bits) bf.set_bit(i);
  return bf;
}

void Tcbf::clear() {
  std::fill(raw_.begin(), raw_.end(), 0.0);
  std::fill(occupied_.begin(), occupied_.end(), 0);
  occupied_bits_ = 0;
  decay_base_ = 0.0;
  merged_ = false;
  touch();
}

std::vector<double> Tcbf::counters() const {
  std::vector<double> out(params_.m, 0.0);
  std::vector<std::size_t> bits;
  set_bits_into(bits);
  for (const std::size_t i : bits) out[i] = effective(i);
  return out;
}

Tcbf Tcbf::from_counters(BloomParams params, double initial_counter,
                         std::vector<double> counters) {
  if (counters.size() != params.m) {
    throw std::invalid_argument("Tcbf::from_counters: size mismatch");
  }
  if (!std::isfinite(initial_counter) || initial_counter <= 0.0) {
    throw std::invalid_argument(
        "Tcbf::from_counters: initial counter must be finite and positive");
  }
  Tcbf t(params, initial_counter);
  // Copy into the padded aligned array (the incoming vector has the wrong
  // allocator and length to be adopted wholesale).
  for (std::size_t i = 0; i < counters.size(); ++i) {
    // Decoded state is untrusted: NaN would poison every later comparison,
    // and values past the ceiling would defeat the saturation invariant on
    // the next merge.
    if (std::isnan(counters[i])) {
      throw std::invalid_argument("Tcbf::from_counters: NaN counter");
    }
    const double v = std::clamp(counters[i], 0.0, kCounterSaturation);
    if (v > 0.0) {
      t.raw_[i] = v;
      t.mark_occupied(i);
    }
  }
  t.merged_ = true;
  t.touch();
  return t;
}

double preference(const Tcbf& b, const Tcbf& f, std::string_view key) {
  return preference(b, f, util::hash_pair(key));
}

double preference(const Tcbf& b, const Tcbf& f, const util::HashPair& hp) {
  double cb = b.min_counter(hp).value_or(0.0);
  std::optional<double> cf = f.min_counter(hp);
  if (!cf.has_value()) return cb;  // key absent from f: preference is c_b
  return cb - *cf;
}

double preference_at(const Tcbf& b, const Tcbf& f,
                     const util::IndexArray& indices) {
  assert(b.params() == f.params());
  double cb = b.min_counter_at(indices).value_or(0.0);
  std::optional<double> cf = f.min_counter_at(indices);
  if (!cf.has_value()) return cb;  // key absent from f: preference is c_b
  return cb - *cf;
}

}  // namespace bsub::bloom
