// TCBF kernel dispatch: resolves the backend once per process.
//
// Resolution order:
//   1. -DBSUB_FORCE_SCALAR builds hardwire the portable scalar kernel (the
//      other backends are not even registered).
//   2. The BSUB_KERNEL environment variable names a backend (scalar |
//      blocked | avx2 | neon); an unavailable or unknown name is reported
//      to stderr once and default dispatch proceeds ("auto" skips straight
//      there).
//   3. Default: the widest backend this build and this CPU support —
//      AVX2 (runtime CPUID check) > NEON (architectural on aarch64) >
//      blocked > scalar.
//
// force_kernel() replaces the cached choice afterwards (startup flags and
// the differential tests use it); it is not safe against concurrently
// running filter operations, which is fine for its two callers.
#include "bloom/kernels.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace bsub::bloom::kernels {

namespace {

#if defined(BSUB_HAVE_AVX2_KERNEL)
bool cpu_has_avx2() {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}
#endif

/// Backend lookup without the env override: nullptr when the kind is not
/// compiled in or the CPU lacks the ISA.
const Ops* lookup(Kind kind) {
  switch (kind) {
    case Kind::kScalar:
      return &scalar_ops();
#if !defined(BSUB_FORCE_SCALAR)
    case Kind::kBlocked:
      return &blocked_ops();
#if defined(BSUB_HAVE_AVX2_KERNEL)
    case Kind::kAvx2:
      return cpu_has_avx2() ? &avx2_ops() : nullptr;
#endif
#if defined(BSUB_HAVE_NEON_KERNEL)
    case Kind::kNeon:
      return &neon_ops();
#endif
#endif
    default:
      return nullptr;
  }
}

const Ops& detect() {
  if (const char* env = std::getenv("BSUB_KERNEL");
      env != nullptr && *env != '\0') {
    const std::string_view name(env);
    if (name != "auto") {
      if (const std::optional<Kind> kind = parse_kind(name); kind) {
        if (const Ops* ops = lookup(*kind); ops != nullptr) return *ops;
        std::fprintf(stderr,
                     "bsub: BSUB_KERNEL=%s is unavailable in this build/CPU; "
                     "using default kernel dispatch\n",
                     env);
      } else {
        std::fprintf(stderr,
                     "bsub: unknown BSUB_KERNEL=%s (want scalar | blocked | "
                     "avx2 | neon | auto); using default kernel dispatch\n",
                     env);
      }
    }
  }
  for (Kind kind : {Kind::kAvx2, Kind::kNeon, Kind::kBlocked}) {
    if (const Ops* ops = lookup(kind); ops != nullptr) return *ops;
  }
  return scalar_ops();
}

/// The dispatched table. Lazy: first call runs detect(); a racing second
/// thread re-derives the same pointer, so the relaxed publish is benign
/// (the Ops tables are constant-initialized statics).
std::atomic<const Ops*> g_active{nullptr};

}  // namespace

const Ops& active() {
  const Ops* ops = g_active.load(std::memory_order_acquire);
  if (ops == nullptr) {
    ops = &detect();
    g_active.store(ops, std::memory_order_release);
  }
  return *ops;
}

Kind active_kind() { return active().kind; }

bool available(Kind kind) { return lookup(kind) != nullptr; }

const Ops* get(Kind kind) { return lookup(kind); }

bool force_kernel(Kind kind) {
  const Ops* ops = lookup(kind);
  if (ops == nullptr) return false;
  g_active.store(ops, std::memory_order_release);
  return true;
}

std::string_view kind_name(Kind kind) {
  switch (kind) {
    case Kind::kScalar:
      return "scalar";
    case Kind::kBlocked:
      return "blocked";
    case Kind::kAvx2:
      return "avx2";
    case Kind::kNeon:
      return "neon";
  }
  return "?";
}

std::optional<Kind> parse_kind(std::string_view name) {
  if (name == "scalar") return Kind::kScalar;
  if (name == "blocked") return Kind::kBlocked;
  if (name == "avx2") return Kind::kAvx2;
  if (name == "neon") return Kind::kNeon;
  return std::nullopt;
}

}  // namespace bsub::bloom::kernels
