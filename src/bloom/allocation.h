// TCBF allocation for optimal FPR (paper section VI-D).
//
// Two pieces:
//
//  1. `optimize_allocation` solves the paper's Eq. 9/10: given a storage
//     bound S_max and a total key population n, find the number of filters h
//     that minimizes the joint FPR subject to the memory bound. Splitting
//     keys evenly over more filters lowers each filter's load faster than
//     the union of h queries raises the joint FPR, so the joint FPR is
//     decreasing in h while the Eq. 8 memory is increasing in h; the optimum
//     is the largest feasible h, found by binary search. From the optimal h
//     the per-filter key budget and the fill-ratio threshold theta (via
//     Eq. 3) follow.
//
//  2. `TcbfPool` implements the dynamic strategy: keys are inserted into the
//     newest filter until its fill ratio exceeds theta, at which point a new
//     TCBF is allocated. Queries and decay fan out across the pool.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "bloom/bloom_params.h"
#include "bloom/tcbf.h"

namespace bsub::bloom {

/// Result of the Eq. 9/10 optimization.
struct AllocationPlan {
  std::uint32_t filter_count = 1;    ///< optimal h
  double keys_per_filter = 0.0;      ///< n_total / h
  double fill_threshold = 1.0;       ///< theta = expected FR at that load
  double joint_fpr = 1.0;            ///< Eq. 7 at the optimum
  double memory_bytes = 0.0;         ///< Eq. 8 at the optimum
  bool feasible = false;             ///< false if even h = 1 violates S_max
};

/// Binary-searches the largest h whose Eq. 8 memory stays under
/// `storage_bound_bytes`, for `n_total` keys split evenly; fills in the
/// fill-ratio threshold theta used by the dynamic strategy.
///
/// `max_filters` bounds the search (h beyond n_total stops helping: a filter
/// would hold less than one key).
AllocationPlan optimize_allocation(double n_total, double storage_bound_bytes,
                                   BloomParams params,
                                   std::uint32_t max_filters = 1u << 20);

/// A growable collection of TCBFs acting as one logical filter.
class TcbfPool {
 public:
  TcbfPool(BloomParams params, double initial_counter, double fill_threshold);

  /// Inserts into the most recent filter, allocating a new one first if its
  /// fill ratio exceeds the threshold. (Pool filters are insert-only; merges
  /// go through `a_merge`/`m_merge` on the whole pool.)
  void insert(std::string_view key);

  /// Existential query across all filters (joint semantics, Eq. 7).
  bool contains(std::string_view key) const;

  /// Maximum min-counter over the filters that contain the key, or nullopt.
  std::optional<double> min_counter(std::string_view key) const;

  /// Decays every filter; filters that become empty are released (keeping at
  /// least one).
  void decay(double amount);

  std::size_t filter_count() const { return filters_.size(); }
  const std::vector<Tcbf>& filters() const { return filters_; }
  double fill_threshold() const { return fill_threshold_; }

  /// Total wire size in bytes under the section VI-C full encoding.
  std::size_t encoded_size_bytes() const;

 private:
  BloomParams params_;
  double initial_counter_;
  double fill_threshold_;
  std::vector<Tcbf> filters_;
};

}  // namespace bsub::bloom
