// TCBF kernel layer: the data-plane operations of the Temporal Counting
// Bloom Filter — A-merge, M-merge, normalize (decay-base fold), popcount /
// set-bit extraction, and the existential / preferential point queries —
// extracted behind one function-pointer table so the same protocol
// semantics can run on different machine backends:
//
//   - kScalar   portable reference: the exact per-bit loops the repo
//               shipped with, plus a dense full-sweep fallback above the
//               density crossover (see below);
//   - kBlocked  register-blocked, cache-conscious: walks the occupancy
//               bitmap one 64-slot word at a time and touches counters at
//               cache-line granularity (8 doubles = 64 bytes per occupancy
//               byte), so a sparse merge moves O(set keys) cache lines
//               instead of O(m) — and never branches per bit inside a line;
//   - kAvx2     x86-64 AVX2: the same blocked structure with each cache
//               line processed as two 256-bit vector ops (point queries
//               stay scalar — k is tiny and gathers lose to plain loads);
//   - kNeon     aarch64 NEON: the blocked structure on 128-bit lanes.
//
// Every kernel computes bit-identical results: all arithmetic is
// element-wise IEEE add/sub/min/max with no reassociation, so the effective
// counter array, the occupancy bitmap, every query answer, and therefore
// every encoded wire byte are equal across backends (the kernel
// differential test and fuzz_tcbf_kernels enforce this).
//
// Lazy-vs-dense crossover: the scalar kernel walks the source's occupancy
// bitmap bit-by-bit while the source is sparse, but above an occupancy
// threshold (1/16 of slots) it switches to a dense word sweep — per-bit
// extraction costs more than streaming the array once when a meaningful
// fraction of slots is live (this is what made the lazy representation
// *lose* to dense on a_merge at m=1024). The blocked and SIMD kernels make
// the equivalent decision at cache-line granularity instead: one occupancy
// byte gates one 64-byte block, a nearly-free predictable branch when the
// source is dense and a full line of saved memory traffic when it is
// sparse, so they need no density switch at all. Crossovers only change
// the instruction schedule, never the results.
//
// Dispatch: the backend is chosen once per process — CPUID feature
// detection picks the widest available kernel, overridable with the
// BSUB_KERNEL environment variable (scalar | blocked | avx2 | neon | auto)
// or force_kernel(). Building with -DBSUB_FORCE_SCALAR=ON compiles the
// portable scalar kernel only (CI keeps that configuration green for
// machines without AVX2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <optional>
#include <string_view>
#include <vector>

namespace bsub::bloom::kernels {

/// Counter storage granularity: one cache line of 8 doubles. The counter
/// array is allocated on this alignment and padded to whole occupancy
/// words, so kernels may always load full aligned blocks.
inline constexpr std::size_t kCounterAlign = 64;

/// Counter slots covered by one occupancy-bitmap word.
inline constexpr std::size_t kSlotsPerWord = 64;

/// Allocator pinning counter blocks to cache-line boundaries (and thereby
/// to legal targets for aligned vector loads).
template <class T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kCounterAlign}));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t{kCounterAlign});
  }

  template <class U>
  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator<U>&) noexcept {
    return true;
  }
};

/// The TCBF counter array: 64-byte aligned, sized to a whole number of
/// occupancy words (padding slots hold 0.0 and never gain occupancy bits).
using CounterVector = std::vector<double, AlignedAllocator<double>>;

/// Read-only view of one filter's hot state. `raw` holds words *
/// kSlotsPerWord slots; a stored value v represents the effective counter
/// max(0, v - base). `occ` bit i set implies raw[i] > 0 (superset of the
/// live slots: decay can strand stale bits until the next normalize).
struct ConstView {
  const double* raw;
  const std::uint64_t* occ;
  std::size_t words;
  std::size_t occupied_bits;  ///< set bits in occ (upper bound on live slots)
  double base;                ///< pending decay not yet folded into raw
};

/// Mutable view of a merge destination. Merge kernels require the
/// destination to be normalized first (base folded in, so occ bit i <=>
/// raw[i] > 0); they keep `*occupied_bits` in sync with `occ`.
struct MutView {
  double* raw;
  std::uint64_t* occ;
  std::size_t words;
  std::size_t* occupied_bits;
};

enum class Kind : std::uint8_t { kScalar = 0, kBlocked = 1, kAvx2 = 2, kNeon = 3 };

/// One backend's implementation of the TCBF data plane. All functions are
/// total over valid views and produce results bit-identical to the scalar
/// reference.
struct Ops {
  Kind kind;
  const char* name;

  /// dst[i] = min(dst[i] + src_effective[i], saturation); OR-in occupancy.
  void (*a_merge)(const MutView& dst, const ConstView& src, double saturation);
  /// dst[i] = max(dst[i], min(src_effective[i], saturation)); OR-in occupancy.
  void (*m_merge)(const MutView& dst, const ConstView& src, double saturation);
  /// Folds `base` into the array (raw[i] = effective) and prunes occupancy
  /// bits whose slot drained to zero.
  void (*normalize)(const MutView& f, double base);
  /// Number of live slots (effective > 0).
  std::size_t (*popcount)(const ConstView& f);
  /// Ascending indices of live slots appended into `out` (cleared first).
  void (*set_bits_into)(const ConstView& f, std::vector<std::size_t>& out);
  /// Existential query: all k slots live?
  bool (*contains)(const ConstView& f, const std::size_t* idx, std::size_t k);
  /// Minimum effective counter over k slots; false when any slot is dead.
  bool (*min_counter)(const ConstView& f, const std::size_t* idx,
                      std::size_t k, double* out);
};

/// Preferential query (paper section IV-A) over precomputed slot indices,
/// composed from the backend's min_counter: c_b - c_f when the key exists
/// in f, else c_b (with absent minima taken as 0).
inline double preference(const Ops& ops, const ConstView& b,
                         const std::size_t* b_idx, const ConstView& f,
                         const std::size_t* f_idx, std::size_t k) {
  double cb = 0.0;
  ops.min_counter(b, b_idx, k, &cb);
  double cf = 0.0;
  if (!ops.min_counter(f, f_idx, k, &cf)) return cb;
  return cb - cf;
}

/// Per-backend tables. scalar_ops()/blocked_ops() always exist;
/// avx2_ops()/neon_ops() exist only in builds whose toolchain produced the
/// corresponding translation unit — use get()/available() for portable
/// lookup.
const Ops& scalar_ops();
const Ops& blocked_ops();
#if defined(BSUB_HAVE_AVX2_KERNEL)
const Ops& avx2_ops();
#endif
#if defined(BSUB_HAVE_NEON_KERNEL)
const Ops& neon_ops();
#endif

/// True when `kind` is compiled in, runnable on this CPU, and not excluded
/// by -DBSUB_FORCE_SCALAR.
bool available(Kind kind);

/// The backend's table, or nullptr when unavailable.
const Ops* get(Kind kind);

/// The dispatched backend: resolved once (BSUB_KERNEL override, else the
/// widest available), then cached for the process lifetime.
const Ops& active();
Kind active_kind();

/// Replaces the dispatched backend (startup flags, differential tests).
/// Returns false — leaving dispatch unchanged — when `kind` is unavailable.
/// Not safe to call concurrently with in-flight filter operations.
bool force_kernel(Kind kind);

std::string_view kind_name(Kind kind);
/// Parses "scalar" | "blocked" | "avx2" | "neon" (nullopt otherwise,
/// including "auto", which callers treat as "use default dispatch").
std::optional<Kind> parse_kind(std::string_view name);

}  // namespace bsub::bloom::kernels
