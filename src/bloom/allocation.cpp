#include "bloom/allocation.h"

#include <algorithm>
#include <cassert>

#include "bloom/fpr.h"
#include "bloom/tcbf_codec.h"

namespace bsub::bloom {

AllocationPlan optimize_allocation(double n_total, double storage_bound_bytes,
                                   BloomParams params,
                                   std::uint32_t max_filters) {
  assert(n_total > 0.0 && storage_bound_bytes > 0.0);
  AllocationPlan plan;

  // More filters than keys stops helping — each filter would hold < 1 key.
  std::uint32_t hi = std::min<std::uint32_t>(
      max_filters, std::max<std::uint32_t>(
                       1, static_cast<std::uint32_t>(n_total)));

  if (multi_filter_memory_bytes(n_total, 1, params) >= storage_bound_bytes) {
    // Even a single filter busts the bound; report the infeasible best.
    plan.filter_count = 1;
    plan.keys_per_filter = n_total;
    plan.fill_threshold = expected_fill_ratio(n_total, params);
    plan.joint_fpr = joint_false_positive_rate_uniform(n_total, 1, params);
    plan.memory_bytes = multi_filter_memory_bytes(n_total, 1, params);
    plan.feasible = false;
    return plan;
  }

  // Memory (Eq. 8) is monotone increasing in h, so binary-search the largest
  // feasible h (the paper's prescription after Eq. 10).
  std::uint32_t lo = 1;
  while (lo < hi) {
    std::uint32_t mid = lo + (hi - lo + 1) / 2;
    if (multi_filter_memory_bytes(n_total, mid, params) < storage_bound_bytes) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }

  plan.filter_count = lo;
  plan.keys_per_filter = n_total / lo;
  plan.fill_threshold = expected_fill_ratio(plan.keys_per_filter, params);
  plan.joint_fpr = joint_false_positive_rate_uniform(n_total, lo, params);
  plan.memory_bytes = multi_filter_memory_bytes(n_total, lo, params);
  plan.feasible = true;
  return plan;
}

TcbfPool::TcbfPool(BloomParams params, double initial_counter,
                   double fill_threshold)
    : params_(params), initial_counter_(initial_counter),
      fill_threshold_(fill_threshold) {
  assert(fill_threshold > 0.0 && fill_threshold <= 1.0);
  filters_.emplace_back(params_, initial_counter_);
}

void TcbfPool::insert(std::string_view key) {
  if (filters_.back().fill_ratio() > fill_threshold_) {
    filters_.emplace_back(params_, initial_counter_);
  }
  filters_.back().insert(key);
}

bool TcbfPool::contains(std::string_view key) const {
  return std::any_of(filters_.begin(), filters_.end(),
                     [&](const Tcbf& f) { return f.contains(key); });
}

std::optional<double> TcbfPool::min_counter(std::string_view key) const {
  std::optional<double> best;
  for (const Tcbf& f : filters_) {
    if (auto c = f.min_counter(key); c.has_value()) {
      best = best.has_value() ? std::max(*best, *c) : *c;
    }
  }
  return best;
}

void TcbfPool::decay(double amount) {
  for (Tcbf& f : filters_) f.decay(amount);
  // Drop drained filters; keep at least one so insert() always has a target.
  std::erase_if(filters_, [this](const Tcbf& f) {
    return f.empty() && filters_.size() > 1;
  });
  if (filters_.empty()) filters_.emplace_back(params_, initial_counter_);
}

std::size_t TcbfPool::encoded_size_bytes() const {
  std::size_t total = 0;
  for (const Tcbf& f : filters_) {
    total += encode_tcbf(f, CounterEncoding::kFull).size();
  }
  return total;
}

}  // namespace bsub::bloom
