#include "bloom/bloom_filter.h"

#include <bit>
#include <cassert>
#include <stdexcept>

#include "util/hash.h"

namespace bsub::bloom {

BloomFilter::BloomFilter(BloomParams params)
    : params_(params), words_((params.m + 63) / 64, 0) {
  assert(params.m > 0 && params.k > 0);
}

void BloomFilter::insert(std::string_view key) {
  insert(util::hash_pair(key));
}

void BloomFilter::insert(const util::HashPair& hp) {
  for (std::size_t i : util::bloom_indices(hp, params_.k, params_.m)) {
    set_bit(i);
  }
}

bool BloomFilter::contains(std::string_view key) const {
  return contains(util::hash_pair(key));
}

bool BloomFilter::contains(const util::HashPair& hp) const {
  for (std::size_t i : util::bloom_indices(hp, params_.k, params_.m)) {
    if (!test_bit(i)) return false;
  }
  return true;
}

void BloomFilter::merge(const BloomFilter& other) {
  if (params_ != other.params_) {
    throw std::invalid_argument("BloomFilter::merge: parameter mismatch");
  }
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
  touch();
}

bool BloomFilter::test_bit(std::size_t i) const {
  assert(i < params_.m);
  return (words_[i / 64] >> (i % 64)) & 1ULL;
}

void BloomFilter::set_bit(std::size_t i) {
  assert(i < params_.m);
  words_[i / 64] |= 1ULL << (i % 64);
  touch();
}

std::size_t BloomFilter::popcount() const {
  std::size_t n = 0;
  for (std::uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

double BloomFilter::fill_ratio() const {
  return static_cast<double>(popcount()) / static_cast<double>(params_.m);
}

std::vector<std::size_t> BloomFilter::set_bits() const {
  std::vector<std::size_t> out;
  set_bits_into(out);
  return out;
}

void BloomFilter::set_bits_into(std::vector<std::size_t>& out) const {
  out.clear();
  out.reserve(popcount());
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t bits = words_[w];
    while (bits != 0) {
      int b = std::countr_zero(bits);
      out.push_back(w * 64 + static_cast<std::size_t>(b));
      bits &= bits - 1;
    }
  }
}

void BloomFilter::clear() {
  for (auto& w : words_) w = 0;
  touch();
}

}  // namespace bsub::bloom
