// Classic Bloom filter (paper section III).
//
// An m-bit vector with k hash functions. Supports insertion, probabilistic
// membership queries (no false negatives, tunable false positives), and
// OR-merging of filters with identical parameters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "bloom/bloom_params.h"
#include "util/hash.h"

namespace bsub::bloom {

class BloomFilter {
 public:
  explicit BloomFilter(BloomParams params = {});

  const BloomParams& params() const { return params_; }
  std::size_t bit_count() const { return params_.m; }

  /// Inserts a key by setting its k hashed bits. The HashPair overload
  /// skips re-hashing for interned keys (workload::KeySet::hash).
  void insert(std::string_view key);
  void insert(const util::HashPair& hp);

  /// True if all of the key's hashed bits are set. False positives possible;
  /// false negatives are not.
  bool contains(std::string_view key) const;
  bool contains(const util::HashPair& hp) const;

  /// Bitwise-OR merge. Requires identical parameters.
  void merge(const BloomFilter& other);

  /// Direct bit access (used by the TCBF and the codec).
  bool test_bit(std::size_t i) const;
  void set_bit(std::size_t i);

  /// Number of set bits.
  std::size_t popcount() const;

  /// Fill ratio: set bits / m (Eq. 3 measures its expectation).
  double fill_ratio() const;

  /// Indices of all set bits, ascending.
  std::vector<std::size_t> set_bits() const;

  void clear();
  bool empty() const { return popcount() == 0; }

  friend bool operator==(const BloomFilter&, const BloomFilter&) = default;

 private:
  BloomParams params_;
  std::vector<std::uint64_t> words_;
};

}  // namespace bsub::bloom
