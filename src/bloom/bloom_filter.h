// Classic Bloom filter (paper section III).
//
// An m-bit vector with k hash functions. Supports insertion, probabilistic
// membership queries (no false negatives, tunable false positives), and
// OR-merging of filters with identical parameters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "bloom/bloom_params.h"
#include "util/hash.h"

namespace bsub::bloom {

class BloomFilter {
 public:
  explicit BloomFilter(BloomParams params = {});

  const BloomParams& params() const { return params_; }
  std::size_t bit_count() const { return params_.m; }

  /// Mutation epoch (see bloom::next_filter_epoch): advances on every
  /// mutating call, so an unchanged epoch means unchanged contents — the
  /// invalidation key for cached wire encodings. Copies keep their source's
  /// epoch (same contents, same encoding).
  std::uint64_t epoch() const { return epoch_; }

  /// Inserts a key by setting its k hashed bits. The HashPair overload
  /// skips re-hashing for interned keys (workload::KeySet::hash).
  void insert(std::string_view key);
  void insert(const util::HashPair& hp);

  /// True if all of the key's hashed bits are set. False positives possible;
  /// false negatives are not.
  bool contains(std::string_view key) const;
  bool contains(const util::HashPair& hp) const;

  /// Membership probe over precomputed bit positions (util::bloom_indices of
  /// the key for this filter's params). Bit-identical to contains(): hot
  /// paths intern the positions once per key instead of re-deriving them on
  /// every probe.
  bool contains_at(const util::IndexArray& indices) const {
    for (std::size_t i : indices) {
      if (!test_bit(i)) return false;
    }
    return true;
  }

  /// Bitwise-OR merge. Requires identical parameters.
  void merge(const BloomFilter& other);

  /// Direct bit access (used by the TCBF and the codec).
  bool test_bit(std::size_t i) const;
  void set_bit(std::size_t i);

  /// Number of set bits.
  std::size_t popcount() const;

  /// Fill ratio: set bits / m (Eq. 3 measures its expectation).
  double fill_ratio() const;

  /// Indices of all set bits, ascending.
  std::vector<std::size_t> set_bits() const;

  /// Scratch-friendly variant: fills `out` (cleared first) so hot encoders
  /// can reuse one buffer instead of allocating per call.
  void set_bits_into(std::vector<std::size_t>& out) const;

  void clear();
  bool empty() const { return popcount() == 0; }

  /// Content equality; the mutation epoch is deliberately excluded.
  friend bool operator==(const BloomFilter& a, const BloomFilter& b) {
    return a.params_ == b.params_ && a.words_ == b.words_;
  }

 private:
  void touch() { epoch_ = next_filter_epoch(); }

  BloomParams params_;
  std::vector<std::uint64_t> words_;
  std::uint64_t epoch_ = next_filter_epoch();
};

}  // namespace bsub::bloom
