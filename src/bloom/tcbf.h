// Temporal Counting Bloom Filter (paper section IV) — the core data
// structure of B-SUB.
//
// Like a CBF, a TCBF pairs each set bit with a counter, but the counters do
// not track key multiplicity; they encode *recency*:
//
//   - insert(key): the key's hashed counters are set to the initial value C.
//     Counters that are already set keep their value, so the result of any
//     sequence of insertions is a filter whose counters all equal C. A key
//     may only be inserted into a filter that has never been merged.
//   - A-merge (additive): bit-vectors OR'd, counters summed. Used when a
//     consumer's genuine filter reinforces a broker's relay filter: repeated
//     meetings pile value onto the consumer's interest bits.
//   - M-merge (maximum): bit-vectors OR'd, counters take the max. Used
//     between brokers to avoid "bogus counters" (paper Fig. 6): two brokers
//     that meet often must not amplify each other's relayed interests in a
//     feedback loop.
//   - decay(amount): every positive counter is decremented by `amount`; a
//     bit clears when its counter reaches zero. This is the only form of
//     deletion (temporal deletion); the decrement rate per unit time is the
//     decaying factor (DF).
//   - existential query: same semantics and FPR as the classic BF.
//   - preferential query: compares the minimum counter of a key's bits in
//     two filters to rank forwarding candidates (see `preference`).
//
// Counters are doubles so that fractional decay rates (e.g. 0.138/min) work
// exactly as the paper's experiments require; the wire codec quantizes them
// to one byte (section VI-C).
//
// Performance representation (not part of the protocol semantics):
//
//   - Decay is O(1): instead of sweeping all m counters, decay accumulates
//     into `decay_base_`. A stored value v represents the effective counter
//     max(0, v - decay_base_); every write stores effective + decay_base_,
//     so interleaved inserts/merges/decays observe exactly the dense
//     semantics. The base is folded back into the array (`normalize`) on
//     merges and when it grows past a precision guard.
//   - Counters live in 64-byte-aligned blocks of 8 doubles, padded to a
//     whole number of occupancy words, so the kernel layer can stream them
//     with aligned vector loads. A per-slot occupancy bitmap (`occupied_`,
//     one 64-bit word per 64 counters = 8 cache lines) lets sweeps and
//     merges skip dead regions at word and cache-line granularity. Decay
//     can silently drain a counter without clearing its occupancy bit;
//     stale bits are skipped on iteration and pruned on the next
//     normalize().
//   - The data-plane operations (merges, normalize, popcount/set-bit
//     sweeps, point queries) run through the runtime-dispatched backend in
//     bloom/kernels.h — scalar, register-blocked, AVX2, or NEON — all
//     bit-identical; see that header for dispatch rules and the
//     lazy-vs-dense merge crossover.
//   - All query entry points have overloads taking a precomputed
//     util::HashPair so hot paths never re-hash key strings (see
//     workload::KeySet::hash for the interned table).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "bloom/bloom_filter.h"
#include "bloom/bloom_params.h"
#include "bloom/kernels.h"
#include "util/hash.h"

namespace bsub::bloom {

/// Default initial counter value C (paper section VII-A uses C = 50).
inline constexpr double kDefaultInitialCounter = 50.0;

/// Saturation ceiling for counters. Real deployments store counters in one
/// byte (section VI-C), so values are inherently bounded; the in-memory
/// ceiling is far above any genuine reinforcement level but stops the
/// A-merge feedback loop (paper Fig. 6) from overflowing doubles. Every
/// write path enforces it — insert, A-merge, M-merge, and from_counters
/// (the decode path) — so no sequence of operations, including merging
/// decoded wire state, can push a stored counter past the ceiling.
inline constexpr double kCounterSaturation = 1e12;

class Tcbf {
 public:
  explicit Tcbf(BloomParams params = {},
                double initial_counter = kDefaultInitialCounter);

  const BloomParams& params() const { return params_; }
  double initial_counter() const { return initial_counter_; }

  /// Mutation epoch (see bloom::next_filter_epoch): advances on every call
  /// that changes observable filter state — insert, merges, clear, and any
  /// decay that actually drains counters. An unchanged epoch therefore means
  /// unchanged contents, which is what cached wire encodings key on. Copies
  /// keep their source's epoch (same contents, same encoding).
  std::uint64_t epoch() const { return epoch_; }

  /// Inserts a key: counters of its hashed bits are set to the initial
  /// value; already-set counters are left unchanged.
  ///
  /// Precondition (paper section IV-A): the filter has never been merged.
  /// Throws std::logic_error otherwise — to add keys to a merged filter,
  /// insert them into a fresh TCBF and A/M-merge it in.
  void insert(std::string_view key);
  void insert(const util::HashPair& hp);

  /// Additive merge: OR bit-vectors, sum counters.
  void a_merge(const Tcbf& other);

  /// Maximum merge: OR bit-vectors, max counters.
  void m_merge(const Tcbf& other);

  /// Applies `amount` of decay: all positive counters are decremented by it
  /// and clamped at zero. `amount` = DF x elapsed-time in the caller's units.
  /// O(1): the amount accumulates into the decay base.
  void decay(double amount);

  /// Existential query: true iff all of the key's hashed bits are set.
  bool contains(std::string_view key) const;
  bool contains(const util::HashPair& hp) const;

  /// Existential query over precomputed bit positions (util::bloom_indices
  /// of the key for this filter's params). Bit-identical to contains().
  bool contains_at(const util::IndexArray& indices) const {
    return kernels::active().contains(const_view(), indices.begin(),
                                      indices.size());
  }

  /// Minimum counter value over the key's hashed bits, or nullopt when the
  /// key is absent (some bit unset). This is the "c" of the preferential
  /// query and also what drives temporal deletion: the key lives until its
  /// minimum counter drains.
  std::optional<double> min_counter(std::string_view key) const;
  std::optional<double> min_counter(const util::HashPair& hp) const;
  /// Minimum counter over precomputed bit positions (fast path companion of
  /// contains_at). Bit-identical to min_counter().
  std::optional<double> min_counter_at(const util::IndexArray& indices) const {
    double out = 0.0;
    if (!kernels::active().min_counter(const_view(), indices.begin(),
                                       indices.size(), &out)) {
      return std::nullopt;
    }
    return out;
  }

  double counter(std::size_t i) const;
  bool test_bit(std::size_t i) const { return counter(i) > 0.0; }

  std::size_t popcount() const;
  double fill_ratio() const;
  std::vector<std::size_t> set_bits() const;
  /// Scratch-friendly variant: fills `out` (cleared first) so hot encoders
  /// can reuse one buffer instead of allocating per call.
  void set_bits_into(std::vector<std::size_t>& out) const;
  bool empty() const;

  /// True once the filter has participated in any merge (insert disabled).
  bool merged() const { return merged_; }

  /// Rips the counters off, leaving the plain Bloom filter used in
  /// bandwidth-saving interest reports (paper section V-D).
  BloomFilter to_bloom_filter() const;

  void clear();

  /// Effective (decayed) counter array, materialized densely — for the
  /// codec and tests, not for hot paths.
  std::vector<double> counters() const;

  /// Rebuilds a TCBF from decoded state. Marks the filter as merged.
  static Tcbf from_counters(BloomParams params, double initial_counter,
                            std::vector<double> counters);

 private:
  /// Effective value of slot i under the current decay base.
  double effective(std::size_t i) const {
    double v = raw_[i];
    return v > decay_base_ ? v - decay_base_ : 0.0;
  }

  void mark_occupied(std::size_t i) {
    std::uint64_t& word = occupied_[i >> 6];
    const std::uint64_t bit = 1ULL << (i & 63);
    occupied_bits_ += !(word & bit);
    word |= bit;
  }

  /// Folds decay_base_ into raw_ and prunes stale occupancy bits. Exact:
  /// effective values are unchanged (single subtraction per live slot).
  void normalize();

  void touch() { epoch_ = next_filter_epoch(); }

  /// Kernel views over the hot arrays (see bloom/kernels.h).
  kernels::ConstView const_view() const {
    return {raw_.data(), occupied_.data(), occupied_.size(), occupied_bits_,
            decay_base_};
  }
  kernels::MutView mut_view() {
    return {raw_.data(), occupied_.data(), occupied_.size(), &occupied_bits_};
  }

  BloomParams params_;
  double initial_counter_;
  bool merged_ = false;
  double decay_base_ = 0.0;
  /// Stored counters: raw_[i] = effective + decay_base_ at write time;
  /// 0 means the slot was never set (or was cleared by a normalize).
  /// 64-byte aligned and padded to occupied_.size() * 64 slots so kernels
  /// stream whole cache-line blocks; slots at index >= params_.m stay 0.
  kernels::CounterVector raw_;
  /// Per-slot occupancy: bit i set => raw_[i] > 0 (superset of the live
  /// bits; decay can leave stale entries until the next normalize).
  std::vector<std::uint64_t> occupied_;
  /// Number of set occupancy bits (upper bound on popcount()).
  std::size_t occupied_bits_ = 0;
  std::uint64_t epoch_ = next_filter_epoch();
};

/// Preferential query (paper section IV-A): the preference of filter `b`
/// for `key` against filter `f`:
///
///   pref = c_b - c_f   if the key exists in f (c_f != 0)
///        = c_b         if the key is absent from f
///
/// where c_x is the minimum counter of the key's bits in x, taken as 0 when
/// the key is absent from x. A broker forwards the messages with the largest
/// positive preference first.
double preference(const Tcbf& b, const Tcbf& f, std::string_view key);
double preference(const Tcbf& b, const Tcbf& f, const util::HashPair& hp);
/// Preferential query over precomputed bit positions (fast-path companion
/// of contains_at / min_counter_at). Requires b.params() == f.params() —
/// the params the indices were computed against. Bit-identical to
/// preference().
double preference_at(const Tcbf& b, const Tcbf& f,
                     const util::IndexArray& indices);

}  // namespace bsub::bloom
