// Register-blocked, cache-conscious TCBF kernel (portable C++).
//
// The unit of work is one counter block: 8 doubles = 64 bytes = one cache
// line, addressed by one byte of the occupancy-bitmap word. A sparse merge
// walks occupancy words, skips empty words with one compare, and for each
// non-zero occupancy byte processes its whole block with straight-line
// code — no per-bit branching, and only cache lines that actually hold
// counters are touched, so a per-contact merge moves O(set keys) lines.
// There is no density crossover: the empty-byte test is one predictable
// branch when the source is dense, so it is kept on unconditionally.
#include <bit>
#include <cstdint>

#include "bloom/kernels.h"
#include "bloom/kernels_detail.h"

namespace bsub::bloom::kernels {

namespace {

constexpr std::size_t kSlotsPerBlock = 8;  // one cache line of doubles

/// Merges one 8-slot block; returns the block's liveness byte (bit j set
/// iff the source slot contributed a positive effective value).
template <bool kAMerge>
inline std::uint64_t merge_block(double* dst, const double* src, double base,
                                 double saturation) {
  std::uint64_t live = 0;
  for (std::size_t j = 0; j < kSlotsPerBlock; ++j) {
    const double add = detail::effective(src[j], base);
    if constexpr (kAMerge) {
      const double sum = dst[j] + add;
      dst[j] = sum < saturation ? sum : saturation;
    } else {
      const double v = add > saturation ? saturation : add;
      const double d = dst[j];
      dst[j] = v > d ? v : d;
    }
    live |= static_cast<std::uint64_t>(add > 0.0) << j;
  }
  return live;
}

/// Block merge for a source with no pending decay: effective == raw, so the
/// loop is pure add/min (resp. min/max) selects with no per-slot liveness —
/// the compiler vectorizes it. The liveness byte is the occupancy byte.
template <bool kAMerge>
inline void merge_block_nobase(double* dst, const double* src,
                               double saturation) {
  for (std::size_t j = 0; j < kSlotsPerBlock; ++j) {
    if constexpr (kAMerge) {
      const double sum = dst[j] + src[j];
      dst[j] = sum < saturation ? sum : saturation;
    } else {
      const double v = src[j] > saturation ? saturation : src[j];
      const double d = dst[j];
      dst[j] = v > d ? v : d;
    }
  }
}

template <bool kAMerge>
void merge(const MutView& dst, const ConstView& src, double saturation) {
  // No density crossover here: the unit of work is a whole cache line, so
  // the empty-byte test costs one predictable branch when the source is
  // dense and saves the line's entire memory traffic when it is sparse.
  if (src.base == 0.0) {
    // Exact occupancy (bit <=> raw > 0): skipped bytes contribute no live
    // bits, so the word's liveness mask is src.occ[w] verbatim.
    for (std::size_t w = 0; w < src.words; ++w) {
      const std::uint64_t srcw = src.occ[w];
      if (srcw == 0) continue;
      for (std::size_t b = 0; b < kSlotsPerWord / kSlotsPerBlock; ++b) {
        if (((srcw >> (b * kSlotsPerBlock)) & 0xFF) == 0) continue;
        const std::size_t s0 = w * kSlotsPerWord + b * kSlotsPerBlock;
        merge_block_nobase<kAMerge>(dst.raw + s0, src.raw + s0, saturation);
      }
      detail::merge_occupancy_word(dst, w, srcw);
    }
    return;
  }
  for (std::size_t w = 0; w < src.words; ++w) {
    const std::uint64_t srcw = src.occ[w];
    if (srcw == 0) continue;
    std::uint64_t live = 0;
    for (std::size_t b = 0; b < kSlotsPerWord / kSlotsPerBlock; ++b) {
      if (((srcw >> (b * kSlotsPerBlock)) & 0xFF) == 0) continue;
      const std::size_t s0 = w * kSlotsPerWord + b * kSlotsPerBlock;
      live |= merge_block<kAMerge>(dst.raw + s0, src.raw + s0, src.base,
                                   saturation)
              << (b * kSlotsPerBlock);
    }
    detail::merge_occupancy_word(dst, w, live);
  }
}

void a_merge(const MutView& dst, const ConstView& src, double saturation) {
  merge<true>(dst, src, saturation);
}

void m_merge(const MutView& dst, const ConstView& src, double saturation) {
  merge<false>(dst, src, saturation);
}

void normalize(const MutView& f, double base) {
  if (base == 0.0) return;
  for (std::size_t w = 0; w < f.words; ++w) {
    const std::uint64_t occw = f.occ[w];
    if (occw == 0) continue;
    std::uint64_t live = 0;
    for (std::size_t b = 0; b < kSlotsPerWord / kSlotsPerBlock; ++b) {
      if (((occw >> (b * kSlotsPerBlock)) & 0xFF) == 0) continue;
      const std::size_t s0 = w * kSlotsPerWord + b * kSlotsPerBlock;
      std::uint64_t block_live = 0;
      for (std::size_t j = 0; j < kSlotsPerBlock; ++j) {
        const double v = detail::effective(f.raw[s0 + j], base);
        f.raw[s0 + j] = v;
        block_live |= static_cast<std::uint64_t>(v > 0.0) << j;
      }
      live |= block_live << (b * kSlotsPerBlock);
    }
    // Slots outside occupied bytes held raw == 0 and stay dead, so the
    // computed liveness mask is exact.
    *f.occupied_bits += static_cast<std::size_t>(std::popcount(live)) -
                        static_cast<std::size_t>(std::popcount(occw));
    f.occ[w] = live;
  }
}

std::size_t popcount(const ConstView& f) {
  std::size_t n = 0;
  for (std::size_t w = 0; w < f.words; ++w) {
    const std::uint64_t occw = f.occ[w];
    if (occw == 0) continue;
    for (std::size_t b = 0; b < kSlotsPerWord / kSlotsPerBlock; ++b) {
      if (((occw >> (b * kSlotsPerBlock)) & 0xFF) == 0) continue;
      const std::size_t s0 = w * kSlotsPerWord + b * kSlotsPerBlock;
      for (std::size_t j = 0; j < kSlotsPerBlock; ++j) {
        n += (detail::effective(f.raw[s0 + j], f.base) > 0.0);
      }
    }
  }
  return n;
}

}  // namespace

const Ops& blocked_ops() {
  static constexpr Ops ops = {
      Kind::kBlocked,
      "blocked",
      &a_merge,
      &m_merge,
      &normalize,
      &popcount,
      &detail::scalar_set_bits_into,
      &detail::scalar_contains,
      &detail::scalar_min_counter,
  };
  return ops;
}

}  // namespace bsub::bloom::kernels
