// False-positive-rate and fill-ratio theory (paper sections III and VI).
//
// Implements Eq. 1-3 (single filter), Eq. 6 (unique keys collected by a
// broker), Eq. 7 (joint FPR of a collection of filters representing one
// set), and Eq. 8 (total memory of h TCBFs under the section VI-C wire
// encoding).
#pragma once

#include <cstdint>
#include <span>

#include "bloom/bloom_params.h"

namespace bsub::bloom {

/// Eq. 1, exact form: (1 - (1 - 1/m)^{kn})^k.
double false_positive_rate_exact(std::uint64_t n, BloomParams params);

/// Eq. 1, approximation: (1 - e^{-kn/m})^k.
double false_positive_rate(std::uint64_t n, BloomParams params);

/// Eq. 2: expected number of set bits after inserting n keys,
/// m(1 - e^{-kn/m}).
double expected_set_bits(double n, BloomParams params);

/// Eq. 3: expected fill ratio, 1 - e^{-kn/m}.
double expected_fill_ratio(double n, BloomParams params);

/// Inverse of Eq. 3: estimated key count from an observed fill ratio,
/// n = -m ln(1 - fr) / k. Requires fr in [0, 1); fr >= 1 returns +inf.
double keys_from_fill_ratio(double fill_ratio, BloomParams params);

/// Eq. 6 (reconstructed): expected number of *unique* keys among N draws
/// from a universe of K equally likely keys: K (1 - (1 - 1/K)^N).
/// The published equation is typographically corrupted; this is the standard
/// occupancy form consistent with the surrounding text ("some interests may
/// be duplicated").
double expected_unique_keys(double drawn, double universe);

/// Eq. 7: joint FPR of h filters holding n_i keys each, all answering a
/// membership query for the same set: 1 - prod_i (1 - FPR(n_i)).
double joint_false_positive_rate(std::span<const std::uint64_t> keys_per_filter,
                                 BloomParams params);

/// Eq. 7 with the keys split evenly (n_i = n_total/h), the optimum shape the
/// paper derives before Eq. 10.
double joint_false_positive_rate_uniform(double n_total, std::uint32_t h,
                                         BloomParams params);

/// Eq. 8: expected total wire size, in BITS, of h TCBFs evenly holding
/// n_total keys, under the section VI-C encoding: each set bit costs
/// ceil(log2 m) bits for its location plus an 8-bit counter.
double multi_filter_memory_bits(double n_total, std::uint32_t h,
                                BloomParams params);

/// Eq. 8 in bytes (ceil).
double multi_filter_memory_bytes(double n_total, std::uint32_t h,
                                 BloomParams params);

/// Section VI-B waste accounting: a message nobody subscribed to is falsely
/// injected with probability ~FPR and then falsely delivered with
/// probability ~FPR again, so the completely-wasted share is FPR^2 ...
double completely_wasted_ratio(double fpr);

/// ... while FPR * (1 - FPR) of false injections still reach genuinely
/// interested users and are "not considered completely wasted".
double partially_useful_ratio(double fpr);

}  // namespace bsub::bloom
