// Counting Bloom filter (paper section III; Fan et al., "Summary Cache").
//
// Associates a counter with each bit so that keys can be deleted: insertion
// increments the key's hashed counters, deletion decrements them, and a bit
// reads as set while its counter is positive.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "bloom/bloom_filter.h"
#include "bloom/bloom_params.h"

namespace bsub::bloom {

class CountingBloomFilter {
 public:
  explicit CountingBloomFilter(BloomParams params = {});

  const BloomParams& params() const { return params_; }

  /// Increments the key's hashed counters (saturating at the counter max).
  void insert(std::string_view key);

  /// Decrements the key's hashed counters, clearing bits that reach zero.
  /// Returns false (and changes nothing) if the key is not present.
  bool remove(std::string_view key);

  /// True if all of the key's hashed counters are positive.
  bool contains(std::string_view key) const;

  std::uint32_t counter(std::size_t i) const;
  std::size_t popcount() const;
  double fill_ratio() const;

  /// Counter-wise sum merge. Requires identical parameters.
  void merge(const CountingBloomFilter& other);

  /// Projects to a plain Bloom filter (bit set iff counter > 0).
  BloomFilter to_bloom_filter() const;

  void clear();

 private:
  BloomParams params_;
  std::vector<std::uint32_t> counters_;
};

}  // namespace bsub::bloom
