#include "bloom/tcbf_codec.h"

#include <algorithm>
#include <cmath>

#include "util/byte_io.h"

namespace bsub::bloom {

// --- helpers ---------------------------------------------------------------

namespace {

// Layout discriminator for the bit-position block.
enum class BitLayout : std::uint8_t { kLocations = 0, kBitmap = 1 };

// Decode-side sanity caps: reject geometry claims no real deployment uses
// before allocating for them (wire bytes are attacker-controlled).
constexpr std::size_t kMaxDecodedBits = std::size_t{1} << 26;  // 8 MiB
constexpr std::uint32_t kMaxDecodedHashes = 64;

constexpr std::uint8_t kMagicTcbf = 0xB5;
constexpr std::uint8_t kMagicBloom = 0xBF;

BitLayout choose_layout(std::size_t set_bits, std::size_t m) {
  // Location list costs s*ceil(log2 m) bits; bitmap costs m bits.
  std::size_t loc_bits = set_bits * util::bits_for(m);
  return loc_bits < m ? BitLayout::kLocations : BitLayout::kBitmap;
}

void write_positions(util::ByteWriter& w, const std::vector<std::size_t>& bits,
                     std::size_t m, BitLayout layout) {
  if (layout == BitLayout::kLocations) {
    unsigned width = util::bits_for(m);
    for (std::size_t b : bits) w.put_bits(b, width);
    w.flush_bits();
  } else {
    // Pool-worker safe: fully overwritten (assign) before every use, and
    // encoders never nest, so no state leaks between calls on a worker.
    thread_local std::vector<std::uint8_t> bitmap;
    bitmap.assign((m + 7) / 8, 0);
    for (std::size_t b : bits) bitmap[b / 8] |= std::uint8_t(1u << (b % 8));
    w.put_bytes(bitmap);
  }
}

BitLayout read_layout(util::ByteReader& r) {
  const std::size_t at = r.offset();
  const std::uint8_t b = r.get_u8();
  if (b > static_cast<std::uint8_t>(BitLayout::kBitmap)) {
    throw util::CodecError("bad bit layout", at, "0 (locations) or 1 (bitmap)",
                           std::to_string(b));
  }
  return static_cast<BitLayout>(b);
}

std::vector<std::size_t> read_positions(util::ByteReader& r, std::size_t m,
                                        std::size_t count, BitLayout layout) {
  std::vector<std::size_t> bits;
  bits.reserve(count);
  if (layout == BitLayout::kLocations) {
    unsigned width = util::bits_for(m);
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t at = r.offset();
      std::size_t b = static_cast<std::size_t>(r.get_bits(width));
      if (b >= m) {
        throw util::CodecError("bit position out of range", at,
                               "position below " + std::to_string(m),
                               std::to_string(b));
      }
      // Encoders emit positions strictly ascending; enforcing that rejects
      // duplicates and keeps every valid encoding canonical (one byte
      // sequence per filter, which the round-trip identity tests rely on).
      if (!bits.empty() && b <= bits.back()) {
        throw util::CodecError("non-canonical position list", at,
                               "strictly ascending positions",
                               std::to_string(b) + " after " +
                                   std::to_string(bits.back()));
      }
      bits.push_back(b);
    }
    r.align_bits();
  } else {
    const auto bitmap = r.get_span((m + 7) / 8);
    for (std::size_t b = 0; b < m; ++b) {
      if ((bitmap[b / 8] >> (b % 8)) & 1u) bits.push_back(b);
    }
    // Padding bits past m must be zero (canonical form).
    for (std::size_t b = m; b < bitmap.size() * 8; ++b) {
      if ((bitmap[b / 8] >> (b % 8)) & 1u) {
        throw util::CodecError("bitmap padding bits set", r.offset(),
                               "zero bits past position " + std::to_string(m),
                               {});
      }
    }
    if (bits.size() != count) {
      throw util::CodecError("bitmap popcount mismatch", r.offset(),
                             std::to_string(count) + " set bits",
                             std::to_string(bits.size()));
    }
  }
  return bits;
}

std::uint8_t quantize(double counter, double scale) {
  // Counters are positive by construction; never quantize a live counter to
  // zero or the key would vanish in transit.
  double q = std::round(counter / scale);
  return static_cast<std::uint8_t>(std::clamp(q, 1.0, 255.0));
}

std::size_t varint_len(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

std::size_t position_bytes(std::size_t set_bits, std::size_t m,
                           BitLayout layout) {
  if (layout == BitLayout::kLocations) {
    return (set_bits * util::bits_for(m) + 7) / 8;
  }
  return (m + 7) / 8;
}

// Thread-local scratch for set-bit extraction on the hot encode path; one
// per thread is enough because encoders never nest. Callers fully rewrite
// it before reading, so reuse across the thread pool's successive jobs
// (conflict-batch workers included) carries no state between calls.
std::vector<std::size_t>& set_bits_scratch() {
  thread_local std::vector<std::size_t> scratch;
  return scratch;
}

}  // namespace

// --- TCBF ------------------------------------------------------------------

std::vector<std::uint8_t> encode_tcbf(const Tcbf& filter,
                                      CounterEncoding encoding) {
  std::vector<std::uint8_t> out;
  encode_tcbf_into(filter, encoding, out);
  return out;
}

void encode_tcbf_into(const Tcbf& filter, CounterEncoding encoding,
                      std::vector<std::uint8_t>& out) {
  auto& bits = set_bits_scratch();
  filter.set_bits_into(bits);
  const std::size_t m = filter.params().m;
  const BitLayout layout = choose_layout(bits.size(), m);

  util::ByteWriter w(std::move(out));
  w.put_u8(kMagicTcbf);
  w.put_u8(static_cast<std::uint8_t>(encoding));
  w.put_u8(static_cast<std::uint8_t>(layout));
  w.put_varint(m);
  w.put_varint(filter.params().k);
  w.put_double(filter.initial_counter());
  w.put_varint(bits.size());

  double max_counter = 0.0;
  for (std::size_t b : bits) max_counter = std::max(max_counter, filter.counter(b));
  double scale = max_counter > 0.0 ? max_counter / 255.0 : 1.0;

  switch (encoding) {
    case CounterEncoding::kFull:
      w.put_double(scale);
      write_positions(w, bits, m, layout);
      for (std::size_t b : bits) w.put_u8(quantize(filter.counter(b), scale));
      break;
    case CounterEncoding::kUniform: {
      w.put_double(scale);
      write_positions(w, bits, m, layout);
      // One shared counter: the maximum (a fresh insert-only filter has all
      // counters equal, so this is lossless in the intended use).
      w.put_u8(bits.empty() ? 0 : quantize(max_counter, scale));
      break;
    }
    case CounterEncoding::kCounterLess:
      write_positions(w, bits, m, layout);
      break;
  }
  out = std::move(w).take();
}

namespace {

/// Validates a decoded counter scale: the encoder only emits scales in
/// (0, kCounterSaturation/255], so anything else (NaN, inf, zero, negative,
/// or absurdly large) is hostile input.
double checked_scale(util::ByteReader& r) {
  const std::size_t at = r.offset();
  const double scale = r.get_double();
  if (!std::isfinite(scale) || scale <= 0.0 ||
      scale > kCounterSaturation / 255.0) {
    throw util::CodecError("bad counter scale", at,
                           "finite scale in (0, saturation/255]", {});
  }
  return scale;
}

}  // namespace

Tcbf decode_tcbf(std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  if (r.get_u8() != kMagicTcbf) {
    throw util::CodecError("bad TCBF magic", 0, "0xB5", {});
  }
  const std::size_t encoding_at = r.offset();
  const std::uint8_t encoding_byte = r.get_u8();
  if (encoding_byte > static_cast<std::uint8_t>(CounterEncoding::kCounterLess)) {
    throw util::CodecError("bad TCBF counter encoding", encoding_at,
                           "0, 1, or 2", std::to_string(encoding_byte));
  }
  const auto encoding = static_cast<CounterEncoding>(encoding_byte);
  const BitLayout layout = read_layout(r);
  BloomParams params;
  params.m = static_cast<std::size_t>(r.get_varint());
  params.k = static_cast<std::uint32_t>(r.get_varint());
  if (params.m == 0 || params.m > kMaxDecodedBits || params.k == 0 ||
      params.k > kMaxDecodedHashes) {
    throw util::CodecError("bad TCBF parameters", r.offset(),
                           "0 < m <= 2^26 and 0 < k <= 64",
                           "m=" + std::to_string(params.m) +
                               " k=" + std::to_string(params.k));
  }
  const std::size_t initial_at = r.offset();
  double initial_counter = r.get_double();
  if (!std::isfinite(initial_counter) || initial_counter <= 0.0 ||
      initial_counter > kCounterSaturation) {
    throw util::CodecError("bad TCBF initial counter", initial_at,
                           "finite value in (0, saturation]", {});
  }
  std::size_t count = static_cast<std::size_t>(r.get_varint());
  if (count > params.m) {
    throw util::CodecError("too many set bits", r.offset(),
                           "at most m=" + std::to_string(params.m),
                           std::to_string(count));
  }
  // Length-prefix sanity: the header fully determines the minimum body size,
  // so a truncated buffer is rejected here — before the O(m) counter array
  // is allocated for it.
  std::size_t need = position_bytes(count, params.m, layout);
  if (encoding == CounterEncoding::kFull) {
    need += 8 + count;  // scale + one counter byte per set bit
  } else if (encoding == CounterEncoding::kUniform) {
    need += 8 + 1;  // scale + shared counter byte
  }
  if (need > r.remaining()) {
    throw util::CodecError("TCBF encoding shorter than its header implies",
                           r.offset(), std::to_string(need) + " more byte(s)",
                           std::to_string(r.remaining()));
  }

  std::vector<double> counters(params.m, 0.0);
  switch (encoding) {
    case CounterEncoding::kFull: {
      const double scale = checked_scale(r);
      auto bits = read_positions(r, params.m, count, layout);
      for (std::size_t b : bits) {
        const std::size_t at = r.offset();
        const std::uint8_t q = r.get_u8();
        // quantize() never emits 0 for a live bit; a zero here would make
        // the bit silently vanish and break popcount == count.
        if (q == 0) {
          throw util::CodecError("zero quantized counter", at,
                                 "byte in [1, 255]", "0");
        }
        counters[b] = static_cast<double>(q) * scale;
      }
      break;
    }
    case CounterEncoding::kUniform: {
      const double scale = checked_scale(r);
      auto bits = read_positions(r, params.m, count, layout);
      const std::size_t at = r.offset();
      const std::uint8_t q = r.get_u8();
      if (q == 0 && count > 0) {
        throw util::CodecError("zero quantized counter", at,
                               "byte in [1, 255]", "0");
      }
      double value = static_cast<double>(q) * scale;
      for (std::size_t b : bits) counters[b] = value;
      break;
    }
    case CounterEncoding::kCounterLess: {
      auto bits = read_positions(r, params.m, count, layout);
      for (std::size_t b : bits) counters[b] = initial_counter;
      break;
    }
  }
  r.expect_end("TCBF encoding");
  return Tcbf::from_counters(params, initial_counter, std::move(counters));
}

// --- BF --------------------------------------------------------------------

std::vector<std::uint8_t> encode_bloom(const BloomFilter& filter) {
  std::vector<std::uint8_t> out;
  encode_bloom_into(filter, out);
  return out;
}

void encode_bloom_into(const BloomFilter& filter,
                       std::vector<std::uint8_t>& out) {
  auto& bits = set_bits_scratch();
  filter.set_bits_into(bits);
  const std::size_t m = filter.params().m;
  const BitLayout layout = choose_layout(bits.size(), m);

  util::ByteWriter w(std::move(out));
  w.put_u8(kMagicBloom);
  w.put_u8(static_cast<std::uint8_t>(layout));
  w.put_varint(m);
  w.put_varint(filter.params().k);
  w.put_varint(bits.size());
  write_positions(w, bits, m, layout);
  out = std::move(w).take();
}

// --- epoch-keyed encode caches ---------------------------------------------

const std::vector<std::uint8_t>& encode_tcbf_cached(const Tcbf& filter,
                                                    CounterEncoding encoding,
                                                    EncodedFilterCache& cache) {
  // Real epochs are never 0, so an empty cache (epoch 0) can't false-hit.
  if (cache.epoch == filter.epoch() && cache.encoding == encoding) {
    ++cache.hits;
    return cache.bytes;
  }
  ++cache.misses;
  encode_tcbf_into(filter, encoding, cache.bytes);
  cache.epoch = filter.epoch();
  cache.encoding = encoding;
  return cache.bytes;
}

const std::vector<std::uint8_t>& encode_bloom_cached(const BloomFilter& filter,
                                                     EncodedFilterCache& cache) {
  if (cache.epoch == filter.epoch()) {
    ++cache.hits;
    return cache.bytes;
  }
  ++cache.misses;
  encode_bloom_into(filter, cache.bytes);
  cache.epoch = filter.epoch();
  return cache.bytes;
}

BloomFilter decode_bloom(std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  if (r.get_u8() != kMagicBloom) {
    throw util::CodecError("bad BF magic", 0, "0xBF", {});
  }
  const BitLayout layout = read_layout(r);
  BloomParams params;
  params.m = static_cast<std::size_t>(r.get_varint());
  params.k = static_cast<std::uint32_t>(r.get_varint());
  if (params.m == 0 || params.m > kMaxDecodedBits || params.k == 0 ||
      params.k > kMaxDecodedHashes) {
    throw util::CodecError("bad BF parameters", r.offset(),
                           "0 < m <= 2^26 and 0 < k <= 64",
                           "m=" + std::to_string(params.m) +
                               " k=" + std::to_string(params.k));
  }
  std::size_t count = static_cast<std::size_t>(r.get_varint());
  if (count > params.m) {
    throw util::CodecError("too many set bits", r.offset(),
                           "at most m=" + std::to_string(params.m),
                           std::to_string(count));
  }
  if (const std::size_t need = position_bytes(count, params.m, layout);
      need > r.remaining()) {
    throw util::CodecError("BF encoding shorter than its header implies",
                           r.offset(), std::to_string(need) + " more byte(s)",
                           std::to_string(r.remaining()));
  }
  BloomFilter bf(params);
  for (std::size_t b : read_positions(r, params.m, count, layout)) {
    bf.set_bit(b);
  }
  r.expect_end("BF encoding");
  return bf;
}

// --- exact wire sizes -------------------------------------------------------

std::size_t encoded_tcbf_wire_size(const Tcbf& filter,
                                   CounterEncoding encoding) {
  const std::size_t s = filter.popcount();
  const std::size_t m = filter.params().m;
  const BitLayout layout = choose_layout(s, m);
  // magic + encoding + layout + varint(m) + varint(k) + initial(double) +
  // varint(s) + positions [+ scale(double) + counter bytes].
  std::size_t n = 3 + varint_len(m) + varint_len(filter.params().k) + 8 +
                  varint_len(s) + position_bytes(s, m, layout);
  switch (encoding) {
    case CounterEncoding::kFull:
      n += 8 + s;
      break;
    case CounterEncoding::kUniform:
      n += 8 + 1;
      break;
    case CounterEncoding::kCounterLess:
      break;
  }
  return n;
}

std::size_t encoded_bloom_wire_size(std::size_t set_bits,
                                    const BloomParams& params) {
  const BitLayout layout = choose_layout(set_bits, params.m);
  // magic + layout + varint(m) + varint(k) + varint(s) + positions.
  return 2 + varint_len(params.m) + varint_len(params.k) +
         varint_len(set_bits) + position_bytes(set_bits, params.m, layout);
}

std::size_t encoded_bloom_wire_size(const BloomFilter& filter) {
  return encoded_bloom_wire_size(filter.popcount(), filter.params());
}

// --- analytical sizes -------------------------------------------------------

double model_wire_size_bytes(std::size_t set_bits, std::size_t m,
                             CounterEncoding encoding) {
  double s = static_cast<double>(set_bits);
  double loc_bytes =
      std::min(s * static_cast<double>(util::bits_for(m)) / 8.0,
               static_cast<double>(m) / 8.0);
  switch (encoding) {
    case CounterEncoding::kFull:
      return loc_bytes + s;  // one counter byte per set bit
    case CounterEncoding::kUniform:
      return loc_bytes + 1.0;
    case CounterEncoding::kCounterLess:
      return loc_bytes;
  }
  return loc_bytes;
}

}  // namespace bsub::bloom
