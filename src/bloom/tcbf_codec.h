// Wire encoding of TCBFs and BFs (paper section VI-C).
//
// Instead of shipping the raw m-bit vector, the codec records the locations
// of the set bits, ceil(log2 m) bits each, which wins whenever the fill
// ratio is low (s * ceil(log2 m) < m); otherwise it falls back to the raw
// bitmap. Counters are quantized to one byte (the paper's resolution: with a
// 24 h horizon one byte gives ~5.6 min granularity). Three progressively
// smaller counter treatments mirror the paper's optimizations:
//
//   Full          per-set-bit counter bytes        (relay-filter exchange)
//   Uniform       one shared counter byte          (freshly built filters)
//   CounterLess   no counters at all               (interest reports / BF)
//
// Decoding treats its input as attacker-controlled: every structural claim
// (magic, enums, geometry, length prefixes, position ordering, counter
// ranges) is validated — before any allocation it implies — and violations
// throw util::CodecError with the failing byte offset (see DESIGN.md §7).
// Valid encodings are canonical: encode(decode(encode(f))) == encode(f)
// byte-for-byte.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bloom/bloom_filter.h"
#include "bloom/tcbf.h"

namespace bsub::bloom {

enum class CounterEncoding : std::uint8_t {
  kFull = 0,
  kUniform = 1,
  kCounterLess = 2,
};

/// Encodes a TCBF. `encoding` selects the counter treatment; kCounterLess
/// rips the counters (the receiver sees a plain BF re-inflated with the
/// initial counter value). The bit positions automatically use whichever of
/// location-list / raw-bitmap is smaller.
std::vector<std::uint8_t> encode_tcbf(const Tcbf& filter,
                                      CounterEncoding encoding);

/// Hot-path variant: encodes into `out` (cleared first, capacity reused) so
/// steady-state encoding performs no heap allocation once buffers warm up.
/// Set-bit extraction goes through a thread-local scratch vector.
void encode_tcbf_into(const Tcbf& filter, CounterEncoding encoding,
                      std::vector<std::uint8_t>& out);

/// Decodes a TCBF previously produced by encode_tcbf. Counter values are
/// recovered up to quantization error. Throws util::DecodeError on
/// malformed input.
Tcbf decode_tcbf(std::span<const std::uint8_t> data);

/// Encodes a plain BF (equivalent to kCounterLess but with no counter
/// metadata at all).
std::vector<std::uint8_t> encode_bloom(const BloomFilter& filter);
BloomFilter decode_bloom(std::span<const std::uint8_t> data);

/// Hot-path variant of encode_bloom; same contract as encode_tcbf_into.
void encode_bloom_into(const BloomFilter& filter,
                       std::vector<std::uint8_t>& out);

/// Memoized wire encoding keyed on the filter's mutation epoch: the cached
/// bytes stay valid exactly as long as the filter's epoch is unchanged
/// (epochs are process-unique, so equal epochs imply identical contents).
/// One cache caches one (filter stream, encoding) pair; hits return the
/// cached buffer without touching the filter's bit array.
struct EncodedFilterCache {
  std::vector<std::uint8_t> bytes;
  /// Epoch the bytes were encoded at; 0 = empty (real epochs are nonzero).
  std::uint64_t epoch = 0;
  CounterEncoding encoding = CounterEncoding::kFull;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

/// Returns the wire encoding of `filter`, re-encoding only when the filter's
/// epoch (or the requested counter encoding) differs from the cache's.
const std::vector<std::uint8_t>& encode_tcbf_cached(const Tcbf& filter,
                                                    CounterEncoding encoding,
                                                    EncodedFilterCache& cache);
const std::vector<std::uint8_t>& encode_bloom_cached(const BloomFilter& filter,
                                                     EncodedFilterCache& cache);

/// Exact size in bytes of encode_tcbf(filter, encoding) — computed from the
/// popcount and geometry alone, without materializing the encoding. The
/// simulator's contact loop only ever charges encoded sizes against link
/// budgets, so it uses these instead of encoding and measuring.
std::size_t encoded_tcbf_wire_size(const Tcbf& filter,
                                   CounterEncoding encoding);

/// Exact size in bytes of encode_bloom for a filter with `set_bits` set bits
/// and the given geometry (and the convenience overload measuring a filter).
std::size_t encoded_bloom_wire_size(std::size_t set_bits,
                                    const BloomParams& params);
std::size_t encoded_bloom_wire_size(const BloomFilter& filter);

/// Paper-model wire sizes in bytes (the analytical accounting of section
/// VI-C, without header overhead), for comparing against raw-string
/// representations:
///   Full:        s * (1 + ceil(log2 m)/8)
///   Uniform:     s * ceil(log2 m)/8 + 1
///   CounterLess: s * ceil(log2 m)/8
/// capped at the raw-bitmap cost m/8 (+ counters where applicable).
double model_wire_size_bytes(std::size_t set_bits, std::size_t m,
                             CounterEncoding encoding);

}  // namespace bsub::bloom
