// Wire encoding of TCBFs and BFs (paper section VI-C).
//
// Instead of shipping the raw m-bit vector, the codec records the locations
// of the set bits, ceil(log2 m) bits each, which wins whenever the fill
// ratio is low (s * ceil(log2 m) < m); otherwise it falls back to the raw
// bitmap. Counters are quantized to one byte (the paper's resolution: with a
// 24 h horizon one byte gives ~5.6 min granularity). Three progressively
// smaller counter treatments mirror the paper's optimizations:
//
//   Full          per-set-bit counter bytes        (relay-filter exchange)
//   Uniform       one shared counter byte          (freshly built filters)
//   CounterLess   no counters at all               (interest reports / BF)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bloom/bloom_filter.h"
#include "bloom/tcbf.h"

namespace bsub::bloom {

enum class CounterEncoding : std::uint8_t {
  kFull = 0,
  kUniform = 1,
  kCounterLess = 2,
};

/// Encodes a TCBF. `encoding` selects the counter treatment; kCounterLess
/// rips the counters (the receiver sees a plain BF re-inflated with the
/// initial counter value). The bit positions automatically use whichever of
/// location-list / raw-bitmap is smaller.
std::vector<std::uint8_t> encode_tcbf(const Tcbf& filter,
                                      CounterEncoding encoding);

/// Decodes a TCBF previously produced by encode_tcbf. Counter values are
/// recovered up to quantization error. Throws util::DecodeError on
/// malformed input.
Tcbf decode_tcbf(std::span<const std::uint8_t> data);

/// Encodes a plain BF (equivalent to kCounterLess but with no counter
/// metadata at all).
std::vector<std::uint8_t> encode_bloom(const BloomFilter& filter);
BloomFilter decode_bloom(std::span<const std::uint8_t> data);

/// Paper-model wire sizes in bytes (the analytical accounting of section
/// VI-C, without header overhead), for comparing against raw-string
/// representations:
///   Full:        s * (1 + ceil(log2 m)/8)
///   Uniform:     s * ceil(log2 m)/8 + 1
///   CounterLess: s * ceil(log2 m)/8
/// capped at the raw-bitmap cost m/8 (+ counters where applicable).
double model_wire_size_bytes(std::size_t set_bits, std::size_t m,
                             CounterEncoding encoding);

}  // namespace bsub::bloom
