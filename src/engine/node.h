// A live B-SUB node: the protocol state machine a real deployment would
// run, driven entirely by wire frames (engine/wire.h).
//
// Contact flow between two nodes (section V, one logical round trip):
//
//   harness: contact begins
//     each side emits kHello (id, broker flag, interest + relay reports)
//   on kHello:
//     - deliver matching buffered messages as kData (custody=false);
//       broker-held copies are offered only while the relay still routes
//       them (reverse-path gating);
//     - if the peer is a broker: emit kGenuineFilter;
//     - if the peer is a broker and we produce: replicate matching own
//       messages as kData (custody=true), bounded by the copy limit;
//     - if both sides are brokers: emit kRelayFilter.
//   on kGenuineFilter (broker): A-merge into the relay filter.
//   on kRelayFilter (broker): preferential-query forwarding of carried
//     messages as kData (custody=true), then M-merge.
//   on kData: custody=true -> store in the carried buffer; custody=false ->
//     consume if genuinely interesting (the key is in our interest set).
//
// The node never touches a network: it consumes frames and returns frames,
// so it is equally testable against the in-memory Network harness or a real
// transport.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "util/hash.h"

#include "bloom/bloom_filter.h"
#include "bloom/tcbf.h"
#include "core/config.h"
#include "engine/wire.h"
#include "util/time.h"

namespace bsub::engine {

/// Configuration for a live node; reuses the protocol constants of
/// core::BsubConfig (filter geometry, C, DF, copy limit, gating).
struct NodeConfig {
  bloom::BloomParams filter_params{256, 4};
  double initial_counter = 50.0;
  double df_per_minute = 0.1;
  std::uint32_t copy_limit = 3;
  bool relay_gated_delivery = true;
  core::BrokerMergeMode broker_merge = core::BrokerMergeMode::kMMerge;
};

/// Projects the simulator-side protocol config onto the live node's knobs
/// (the shared constants: filter geometry, C, DF, copy limit, gating,
/// merge mode). Election thresholds and simulator-only execution-path
/// toggles are not part of a node; callers that also need the election use
/// the BsubConfig directly (see TraceRunner::from_protocol_spec).
NodeConfig node_config_from(const core::BsubConfig& config);

class BsubNode {
 public:
  /// Called when a message is accepted by this node as a consumer.
  using DeliveryHandler =
      std::function<void(const ContentMessage&, util::Time)>;

  BsubNode(NodeId id, NodeConfig config = {});

  NodeId id() const { return id_; }
  bool is_broker() const { return broker_; }
  void set_broker(bool broker) { broker_ = broker; }

  /// Subscribes to a content key.
  void subscribe(std::string key);
  const std::set<std::string>& subscriptions() const { return interests_; }

  /// Publishes a message this node produced; it becomes eligible for direct
  /// delivery and broker pickup.
  void publish(ContentMessage message, util::Time now);

  void set_delivery_handler(DeliveryHandler handler) {
    on_delivery_ = std::move(handler);
  }

  /// Contact bootstrap: the frames this node sends when a contact opens.
  std::vector<std::vector<std::uint8_t>> begin_contact(util::Time now);

  /// Handles one incoming frame; returns the response frames (possibly
  /// empty). Malformed frames are dropped (util::DecodeError swallowed —
  /// a real radio sees garbage).
  std::vector<std::vector<std::uint8_t>> handle(
      std::span<const std::uint8_t> frame_bytes, util::Time now);

  /// Drops expired state; safe to call any time.
  void purge(util::Time now);

  /// Timer-driven maintenance for the live runtime: purges expired state
  /// and applies pending relay decay eagerly. TCBF decay is additive in
  /// elapsed time, so ticking is state-equivalent to the lazy on-access
  /// decay — a runtime with any tick cadence computes identical results.
  /// A node whose relay never materialized has nothing to decay (decaying
  /// an empty filter is a no-op), so the tick stays O(1) for it.
  void decay_tick(util::Time now) {
    purge(now);
    if (relay_ != nullptr) relay_now(now);
  }

  /// True if this node ever took broker custody of message `id` (survives
  /// handoff and expiry; used for per-message hop-count accounting).
  bool ever_carried(std::uint64_t id) const {
    return carried_ever_.contains(id);
  }

  // Introspection.
  std::size_t produced_count() const { return produced_.size(); }
  std::size_t carried_count() const { return carried_.size(); }
  /// Materializes the relay on demand: introspecting a node that never
  /// became a broker hands back a freshly allocated empty filter (the same
  /// state the eager layout would hold, since decay of an empty filter is
  /// a no-op).
  const bloom::Tcbf& relay_filter() const {
    if (relay_ == nullptr) {
      relay_ = std::make_unique<bloom::Tcbf>(config_.filter_params,
                                             config_.initial_counter);
    }
    return *relay_;
  }
  std::uint64_t deliveries_made() const { return deliveries_made_; }
  std::uint64_t pickups_sent() const { return pickups_sent_; }
  std::uint64_t custody_accepted() const { return custody_accepted_; }
  std::uint64_t custody_refused() const { return custody_refused_; }
  std::uint64_t consumed_total() const { return consumed_.size(); }

  /// Hot-path introspection: epoch-cached frame encodings reused / rebuilt
  /// across the hello, genuine, and relay streams.
  std::uint64_t frame_cache_hits() const {
    return hello_cache_.hits + genuine_cache_.hits + relay_cache_.hits;
  }
  std::uint64_t frame_cache_misses() const {
    return hello_cache_.misses + genuine_cache_.misses + relay_cache_.misses;
  }
  /// Purge calls skipped because the expiry watermark proved nothing could
  /// have expired, vs. calls that actually scanned the buffers.
  std::uint64_t purges_skipped() const { return purges_skipped_; }
  std::uint64_t purges_run() const { return purges_run_; }

 private:
  struct OwnedMessage {
    ContentMessage msg;
    /// Interned Bloom hash of msg.key: filter matches on every contact
    /// without re-hashing the string.
    util::HashPair key_hash;
    std::uint32_t copies_left;
    /// Brokers that already hold a replica; a copy is never spent twice on
    /// the same peer (the producer remembers its placements).
    std::set<NodeId> placed;
  };

  /// A message held in custody, with its key hash and Bloom bit positions
  /// (for this node's filter params) interned at admission.
  struct CarriedMessage {
    ContentMessage msg;
    util::HashPair key_hash;
    /// msg.key's bit positions under config_.filter_params: the relay
    /// preference ranking runs over these without re-deriving k indices
    /// per contact (kernel point queries gather straight from them).
    util::IndexArray key_indices;
  };

  bloom::Tcbf& relay_now(util::Time now);
  /// Keeps the relay's counter-less BF projection in sync with the relay
  /// filter's epoch; rebuilt only when the relay actually changed.
  const bloom::BloomFilter& relay_report_now(util::Time now);
  /// Registers an admitted message in the purge watermark.
  void note_expiry(util::Time expiry) {
    next_expiry_ = std::min(next_expiry_, expiry);
  }
  std::vector<std::vector<std::uint8_t>> on_hello(const HelloFrame& hello,
                                                  util::Time now);
  std::vector<std::vector<std::uint8_t>> on_relay(const RelayFrame& frame,
                                                  util::Time now);
  void on_genuine(const GenuineFrame& frame, util::Time now);
  std::vector<std::vector<std::uint8_t>> on_data(const DataFrame& frame,
                                                 util::Time now);
  void on_custody_ack(const CustodyAckFrame& ack, util::Time now);
  void append_deliveries(const bloom::BloomFilter& report, util::Time now,
                         std::vector<std::vector<std::uint8_t>>& out);
  void append_pickups(NodeId broker, const bloom::BloomFilter& relay_report,
                      util::Time now,
                      std::vector<std::vector<std::uint8_t>>& out);

  NodeId id_;
  NodeConfig config_;
  bool broker_ = false;
  std::set<std::string> interests_;
  /// Interned hashes of interests_, in set order (rebuilt on subscribe).
  std::vector<util::HashPair> interest_hashes_;
  std::map<std::uint64_t, OwnedMessage> produced_;
  std::map<std::uint64_t, CarriedMessage> carried_;
  /// Peers that permanently refused custody of a carried id (nacked).
  std::map<std::uint64_t, std::set<NodeId>> transfer_refused_;
  std::unordered_set<std::uint64_t> carried_ever_;
  std::unordered_set<std::uint64_t> consumed_;
  /// Relay TCBF, materialized on first broker use (merge, gated delivery,
  /// relay-frame emission) — null for the vast majority of nodes, which
  /// never broker. Null is observationally an empty filter: decay no-ops
  /// on empty filters, so materializing with the clock set to "now" is
  /// state-identical to having carried an eager empty relay since t=0.
  /// `mutable` so the const introspection accessor can materialize too.
  mutable std::unique_ptr<bloom::Tcbf> relay_;
  util::Time relay_decayed_at_ = 0;
  DeliveryHandler on_delivery_;
  std::uint64_t deliveries_made_ = 0;
  std::uint64_t pickups_sent_ = 0;
  std::uint64_t custody_accepted_ = 0;
  std::uint64_t custody_refused_ = 0;

  /// Counter-less BF of interests_, rebuilt on subscribe (not per contact).
  bloom::BloomFilter interest_report_;
  /// Genuine TCBF of interests_, built on first subscribe — null for pure
  /// producers/brokers with no subscriptions (it is only ever sent by
  /// subscribers, guarded by `!interests_.empty()`).
  std::unique_ptr<bloom::Tcbf> genuine_filter_;
  /// Counter-less projection of relay_, rebuilt only when relay_'s epoch
  /// moved past relay_report_epoch_.
  bloom::BloomFilter relay_report_;
  std::uint64_t relay_report_epoch_ = 0;
  /// Epoch-keyed encoded-frame caches (one per outgoing frame stream).
  FrameCache hello_cache_;
  FrameCache genuine_cache_;
  FrameCache relay_cache_;
  /// Earliest expiry over produced_/carried_ admissions (a lower bound:
  /// early removals never raise it). purge() is O(1) before this instant.
  util::Time next_expiry_ = util::kTimeMax;
  std::uint64_t purges_skipped_ = 0;
  std::uint64_t purges_run_ = 0;
};

}  // namespace bsub::engine
