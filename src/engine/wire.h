// Wire protocol for the live B-SUB node engine (the paper's future-work
// "prototype HUNET system").
//
// Everything two devices exchange during a contact is a versioned,
// length-prefixed, checksummed frame (magic, version, type, payload length,
// payload, FNV checksum). The frame types mirror the protocol steps of
// section V:
//
//   kHello          opens a contact: sender id, broker flag, and the
//                   counter-less interest/relay reports the peer needs to
//                   start matching immediately (one round trip total).
//   kGenuineFilter  consumer -> broker interest propagation (uniform TCBF).
//   kRelayFilter    broker <-> broker relay exchange (full TCBF).
//   kData           a content message; the custody flag distinguishes a
//                   broker replica (pickup / preferential transfer) from a
//                   final delivery.
//
// Frames survive hostile bytes: decode() treats its input as
// attacker-controlled and throws util::CodecError (alias util::DecodeError)
// on any malformed, truncated, oversized, out-of-range, trailing-garbage,
// or checksum-failing input, with the failing byte offset attached. Length
// claims are capped before any allocation they imply (see DESIGN.md §7).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bloom/bloom_filter.h"
#include "bloom/tcbf.h"
#include "util/time.h"

namespace bsub::engine {

/// Engine node identifier (independent of trace NodeId).
using NodeId = std::uint64_t;

/// First header byte of every frame ('[').
inline constexpr std::uint8_t kFrameMagic = 0x5B;
/// Wire format revision, the second header byte. Decoders reject any other
/// value with util::CodecError: a version bump is a deliberate compatibility
/// break, never a silent reinterpretation of old bytes.
inline constexpr std::uint8_t kWireVersion = 1;

enum class FrameType : std::uint8_t {
  kHello = 1,
  kGenuineFilter = 2,
  kRelayFilter = 3,
  kData = 4,
  kCustodyAck = 5,
};

/// A content message as carried on the wire: the key is a raw string (the
/// engine is independent of any workload key table).
struct ContentMessage {
  std::uint64_t id = 0;
  std::string key;
  std::vector<std::uint8_t> body;
  NodeId producer = 0;
  util::Time created = 0;
  util::Time ttl = 0;

  util::Time expiry() const { return created + ttl; }
  bool expired_at(util::Time now) const { return now >= expiry(); }

  friend bool operator==(const ContentMessage&, const ContentMessage&) =
      default;
};

struct HelloFrame {
  NodeId sender = 0;
  bool is_broker = false;
  /// Counter-less BF of the sender's own interests.
  bloom::BloomFilter interest_report;
  /// Counter-less BF of the sender's relay filter (meaningful for brokers).
  bloom::BloomFilter relay_report;
};

struct GenuineFrame {
  NodeId sender = 0;
  bloom::Tcbf filter;
};

struct RelayFrame {
  NodeId sender = 0;
  bloom::Tcbf filter;
};

struct DataFrame {
  NodeId sender = 0;
  ContentMessage message;
  /// True when the receiver takes broker custody (a replica), false when
  /// this is a final delivery to a consumer.
  bool custody = false;
};

/// Confirms that a custody DATA frame was accepted. Custody transfers are
/// two-phase: the sender only releases (or charges) its copy on the ack, so
/// a refusal or a lost frame never destroys the message.
struct CustodyAckFrame {
  NodeId sender = 0;
  std::uint64_t message_id = 0;
  /// False = permanent refusal (the receiver already carried this id);
  /// the sender stops offering this message to this peer.
  bool accepted = true;
};

/// A decoded frame; exactly one member is engaged, per `type`.
struct Frame {
  FrameType type = FrameType::kHello;
  std::optional<HelloFrame> hello;
  std::optional<GenuineFrame> genuine;
  std::optional<RelayFrame> relay;
  std::optional<DataFrame> data;
  std::optional<CustodyAckFrame> custody_ack;
};

std::vector<std::uint8_t> encode(const HelloFrame& frame);
std::vector<std::uint8_t> encode(const GenuineFrame& frame);
std::vector<std::uint8_t> encode(const RelayFrame& frame);
std::vector<std::uint8_t> encode(const DataFrame& frame);
std::vector<std::uint8_t> encode(const CustodyAckFrame& frame);

/// Hot-path variants: encode into `out` (cleared, capacity reused); filter
/// blobs and payload assembly go through thread-local scratch buffers, so
/// re-encoding into a warmed buffer performs no heap allocation.
void encode_into(const HelloFrame& frame, std::vector<std::uint8_t>& out);
void encode_into(const GenuineFrame& frame, std::vector<std::uint8_t>& out);
void encode_into(const RelayFrame& frame, std::vector<std::uint8_t>& out);
void encode_into(const DataFrame& frame, std::vector<std::uint8_t>& out);
void encode_into(const CustodyAckFrame& frame, std::vector<std::uint8_t>& out);

/// Epoch-keyed cache of one node's encoded frame bytes for a single frame
/// stream (hello, genuine, or relay). The sender id is not part of the key:
/// a cache belongs to one node. Filters carry process-unique mutation
/// epochs, so equal epochs imply identical contents and the cached bytes
/// can be replayed verbatim.
struct FrameCache {
  std::vector<std::uint8_t> bytes;
  std::uint64_t epoch = 0;   ///< filter epoch (hello: interest report)
  std::uint64_t epoch2 = 0;  ///< hello only: relay report epoch
  bool broker = false;       ///< hello only: broker flag at encode time
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

/// Cached hello encoding, keyed on both reports' epochs + the broker flag.
const std::vector<std::uint8_t>& encode_hello_cached(
    NodeId sender, bool is_broker, const bloom::BloomFilter& interest_report,
    const bloom::BloomFilter& relay_report, FrameCache& cache);

/// Cached genuine-filter encoding, keyed on the filter's epoch.
const std::vector<std::uint8_t>& encode_genuine_cached(NodeId sender,
                                                       const bloom::Tcbf& filter,
                                                       FrameCache& cache);

/// Cached relay-filter encoding, keyed on the filter's epoch.
const std::vector<std::uint8_t>& encode_relay_cached(NodeId sender,
                                                     const bloom::Tcbf& filter,
                                                     FrameCache& cache);

/// Decodes any frame; throws util::DecodeError on malformed input.
Frame decode(std::span<const std::uint8_t> bytes);

}  // namespace bsub::engine
