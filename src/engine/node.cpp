#include "engine/node.h"

#include <algorithm>

#include "util/byte_io.h"

namespace bsub::engine {

BsubNode::BsubNode(NodeId id, NodeConfig config)
    : id_(id), config_(config),
      interest_report_(config.filter_params),
      relay_report_(config.filter_params) {}

void BsubNode::subscribe(std::string key) {
  interests_.insert(std::move(key));
  interest_hashes_.clear();
  interest_hashes_.reserve(interests_.size());
  for (const std::string& k : interests_) {
    interest_hashes_.push_back(util::hash_pair(k));
  }
  // The interest report and genuine filter are pure functions of the
  // subscription set: rebuild them here, once per subscribe, instead of per
  // contact. The rebuilds advance their epochs, invalidating the hello and
  // genuine frame caches automatically.
  interest_report_ = bloom::BloomFilter(config_.filter_params);
  genuine_filter_ = std::make_unique<bloom::Tcbf>(config_.filter_params,
                                                  config_.initial_counter);
  for (const util::HashPair& hp : interest_hashes_) {
    interest_report_.insert(hp);
    genuine_filter_->insert(hp);
  }
}

void BsubNode::publish(ContentMessage message, util::Time now) {
  message.producer = id_;
  if (message.created == 0) message.created = now;
  note_expiry(message.expiry());
  const util::HashPair hp = util::hash_pair(message.key);
  produced_.emplace(
      message.id,
      OwnedMessage{std::move(message), hp, config_.copy_limit, {}});
}

bloom::Tcbf& BsubNode::relay_now(util::Time now) {
  if (relay_ == nullptr) {
    // First broker use. Arming the decay clock at `now` instead of 0 is
    // exact: the filter was empty for the whole skipped interval, and
    // decaying an empty filter is a no-op.
    relay_ = std::make_unique<bloom::Tcbf>(config_.filter_params,
                                           config_.initial_counter);
    relay_decayed_at_ = now;
  }
  if (now > relay_decayed_at_) {
    if (config_.df_per_minute > 0.0) {
      relay_->decay(config_.df_per_minute *
                    util::to_minutes(now - relay_decayed_at_));
    }
    relay_decayed_at_ = now;
  }
  return *relay_;
}

const bloom::BloomFilter& BsubNode::relay_report_now(util::Time now) {
  // An unmaterialized relay projects to the (default-constructed, empty)
  // report; returning it without materializing keeps hello emission free
  // for never-broker nodes.
  if (relay_ == nullptr) return relay_report_;
  const bloom::Tcbf& relay = relay_now(now);
  if (relay_report_epoch_ != relay.epoch()) {
    relay_report_ = relay.to_bloom_filter();
    relay_report_epoch_ = relay.epoch();
  }
  return relay_report_;
}

std::vector<std::vector<std::uint8_t>> BsubNode::begin_contact(
    util::Time now) {
  purge(now);
  // Cached hello: reused verbatim while the interest report, the relay
  // projection, and the broker flag are all unchanged.
  return {encode_hello_cached(id_, broker_, interest_report_,
                              relay_report_now(now), hello_cache_)};
}

std::vector<std::vector<std::uint8_t>> BsubNode::handle(
    std::span<const std::uint8_t> frame_bytes, util::Time now) {
  Frame frame;
  try {
    frame = decode(frame_bytes);
  } catch (const util::DecodeError&) {
    return {};  // radios see garbage; drop it
  }
  purge(now);
  switch (frame.type) {
    case FrameType::kHello:
      return on_hello(*frame.hello, now);
    case FrameType::kGenuineFilter:
      on_genuine(*frame.genuine, now);
      return {};
    case FrameType::kRelayFilter:
      return on_relay(*frame.relay, now);
    case FrameType::kData:
      return on_data(*frame.data, now);
    case FrameType::kCustodyAck:
      on_custody_ack(*frame.custody_ack, now);
      return {};
  }
  return {};
}

void BsubNode::append_deliveries(
    const bloom::BloomFilter& report, util::Time now,
    std::vector<std::vector<std::uint8_t>>& out) {
  auto offer = [&](const ContentMessage& msg, const util::HashPair& hp) {
    if (!report.contains(hp)) return;
    DataFrame data;
    data.sender = id_;
    data.message = msg;
    data.custody = false;
    out.push_back(encode(data));
    ++deliveries_made_;
  };
  for (const auto& [id, owned] : produced_) offer(owned.msg, owned.key_hash);
  const bloom::Tcbf* gate =
      (config_.relay_gated_delivery && broker_) ? &relay_now(now) : nullptr;
  for (const auto& [id, carried] : carried_) {
    if (gate != nullptr && !gate->contains(carried.key_hash)) continue;
    offer(carried.msg, carried.key_hash);
  }
}

void BsubNode::append_pickups(NodeId broker,
                              const bloom::BloomFilter& relay_report,
                              util::Time now,
                              std::vector<std::vector<std::uint8_t>>& out) {
  (void)now;
  // Two-phase custody: offers are free; the copy budget is only charged
  // when the broker's ack arrives (on_custody_ack).
  std::uint32_t in_flight = 0;
  for (auto& [id, owned] : produced_) {
    if (owned.copies_left == 0 || owned.placed.contains(broker) ||
        !relay_report.contains(owned.key_hash)) {
      continue;
    }
    ++pickups_sent_;
    ++in_flight;
    DataFrame data;
    data.sender = id_;
    data.message = owned.msg;
    data.custody = true;
    out.push_back(encode(data));
  }
}

std::vector<std::vector<std::uint8_t>> BsubNode::on_hello(
    const HelloFrame& hello, util::Time now) {
  std::vector<std::vector<std::uint8_t>> out;

  // Direct + broker-to-consumer delivery against the peer's report.
  append_deliveries(hello.interest_report, now, out);

  if (hello.is_broker) {
    // Interest propagation: our genuine filter (rebuilt on subscribe, so
    // the cached encoding is reused across contacts).
    if (!interests_.empty()) {
      out.push_back(encode_genuine_cached(id_, *genuine_filter_,
                                          genuine_cache_));
    }
    // Pickup: replicate matching own messages to the broker.
    append_pickups(hello.sender, hello.relay_report, now, out);
    // Broker-broker: send our relay filter for the preferential exchange.
    if (broker_) {
      out.push_back(encode_relay_cached(id_, relay_now(now), relay_cache_));
    }
  }
  return out;
}

void BsubNode::on_genuine(const GenuineFrame& frame, util::Time now) {
  if (!broker_) return;  // only brokers hold relay filters
  relay_now(now).a_merge(frame.filter);
}

std::vector<std::vector<std::uint8_t>> BsubNode::on_relay(
    const RelayFrame& frame, util::Time now) {
  std::vector<std::vector<std::uint8_t>> out;
  if (!broker_) return out;
  bloom::Tcbf& mine = relay_now(now);

  // Preferential forwarding decisions on the pre-merge filters. When the
  // peer's filter params match ours (the common case — both sides run the
  // same deployment config), rank over the bit positions interned at
  // custody admission; otherwise fall back to hashing against the peer's
  // geometry. Both routes are bit-identical for matching params.
  const bool same_params = frame.filter.params() == mine.params();
  std::vector<std::pair<double, std::uint64_t>> ranked;
  for (const auto& [id, carried] : carried_) {
    if (auto it = transfer_refused_.find(id);
        it != transfer_refused_.end() && it->second.contains(frame.sender)) {
      continue;  // the peer already told us it will not take this one
    }
    const double pref =
        same_params
            ? bloom::preference_at(frame.filter, mine, carried.key_indices)
            : bloom::preference(frame.filter, mine, carried.key_hash);
    if (pref > 0.0) ranked.emplace_back(pref, id);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& x, const auto& y) {
    return std::tie(y.first, x.second) < std::tie(x.first, y.second);
  });
  for (const auto& [pref, id] : ranked) {
    DataFrame data;
    data.sender = id_;
    data.message = carried_.at(id).msg;
    data.custody = true;
    out.push_back(encode(data));
    // Two-phase custody: the copy leaves only when the peer acks.
  }

  if (config_.broker_merge == core::BrokerMergeMode::kMMerge) {
    mine.m_merge(frame.filter);
  } else {
    mine.a_merge(frame.filter);
  }
  return out;
}

std::vector<std::vector<std::uint8_t>> BsubNode::on_data(
    const DataFrame& frame, util::Time now) {
  const ContentMessage& msg = frame.message;
  if (msg.expired_at(now)) return {};
  if (frame.custody) {
    if (broker_ && !carried_ever_.contains(msg.id) && msg.producer != id_) {
      const util::HashPair hp = util::hash_pair(msg.key);
      carried_.emplace(
          msg.id,
          CarriedMessage{msg, hp,
                         util::bloom_indices(hp, config_.filter_params.k,
                                             config_.filter_params.m)});
      carried_ever_.insert(msg.id);
      note_expiry(msg.expiry());
      ++custody_accepted_;
      CustodyAckFrame ack;
      ack.sender = id_;
      ack.message_id = msg.id;
      return {encode(ack)};
    }
    ++custody_refused_;
    CustodyAckFrame nack;
    nack.sender = id_;
    nack.message_id = msg.id;
    nack.accepted = false;
    return {encode(nack)};
  }
  // Final delivery: consume only if genuinely subscribed (a Bloom false
  // positive on the sender side is discarded here). Own productions do not
  // count as deliveries.
  if (msg.producer == id_ || !interests_.contains(msg.key)) return {};
  if (!consumed_.insert(msg.id).second) return {};
  if (on_delivery_) on_delivery_(msg, now);
  return {};
}

void BsubNode::on_custody_ack(const CustodyAckFrame& ack, util::Time now) {
  (void)now;
  if (auto it = produced_.find(ack.message_id); it != produced_.end()) {
    OwnedMessage& owned = it->second;
    if (!ack.accepted) {
      // Permanent refusal: never offer this message to this peer again,
      // without charging the copy budget.
      owned.placed.insert(ack.sender);
      return;
    }
    // Placed: charge the budget and remember the peer.
    if (owned.copies_left > 0 && !owned.placed.contains(ack.sender)) {
      owned.placed.insert(ack.sender);
      if (--owned.copies_left == 0) produced_.erase(it);
    }
    return;
  }
  // A carried copy moved to a better broker: single custody, drop ours.
  if (ack.accepted) {
    carried_.erase(ack.message_id);
    transfer_refused_.erase(ack.message_id);
  } else if (carried_.contains(ack.message_id)) {
    transfer_refused_[ack.message_id].insert(ack.sender);
  }
}

void BsubNode::purge(util::Time now) {
  // Watermark gate: nothing admitted can have expired before next_expiry_
  // (early removals only make the bound conservative), so purge is O(1)
  // until that instant.
  if (now < next_expiry_) {
    ++purges_skipped_;
    return;
  }
  ++purges_run_;
  std::erase_if(produced_, [now](const auto& kv) {
    return kv.second.msg.expired_at(now);
  });
  std::erase_if(carried_, [now](const auto& kv) {
    return kv.second.msg.expired_at(now);
  });
  std::erase_if(transfer_refused_, [this](const auto& kv) {
    return !carried_.contains(kv.first);
  });
  // Re-derive the watermark from the survivors.
  next_expiry_ = util::kTimeMax;
  for (const auto& [id, owned] : produced_) {
    next_expiry_ = std::min(next_expiry_, owned.msg.expiry());
  }
  for (const auto& [id, carried] : carried_) {
    next_expiry_ = std::min(next_expiry_, carried.msg.expiry());
  }
}

NodeConfig node_config_from(const core::BsubConfig& config) {
  NodeConfig out;
  out.filter_params = config.filter_params;
  out.initial_counter = config.initial_counter;
  out.df_per_minute = config.df_per_minute;
  out.copy_limit = config.copy_limit;
  out.relay_gated_delivery = config.relay_gated_delivery;
  out.broker_merge = config.broker_merge;
  return out;
}

}  // namespace bsub::engine
