#include "engine/network.h"

#include <deque>
#include <stdexcept>

namespace bsub::engine {

BsubNode& Network::add_node(NodeId id) {
  auto [it, inserted] =
      nodes_.emplace(id, std::make_unique<BsubNode>(id, node_config_));
  if (!inserted) throw std::invalid_argument("Network: duplicate node id");
  BsubNode* node = it->second.get();
  node->set_delivery_handler(
      [this, id](const ContentMessage& msg, util::Time at) {
        // In per-node-log mode this runs inside the node's own contact, so
        // no other worker can touch per_node_deliveries_[id] concurrently.
        if (per_node_log_) {
          per_node_deliveries_[id].push_back(
              DeliveryRecord{id, msg.id, msg.key, at});
        } else {
          deliveries_.push_back(DeliveryRecord{id, msg.id, msg.key, at});
        }
      });
  return *node;
}

void Network::use_per_node_delivery_log(std::size_t node_count) {
  per_node_log_ = true;
  per_node_deliveries_.resize(node_count);
}

const std::vector<DeliveryRecord>& Network::deliveries() const {
  if (!per_node_log_) return deliveries_;
  flattened_.clear();
  for (const auto& log : per_node_deliveries_) {
    flattened_.insert(flattened_.end(), log.begin(), log.end());
  }
  return flattened_;
}

BsubNode& Network::node(NodeId id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) throw std::out_of_range("Network: unknown node");
  return *it->second;
}

const BsubNode& Network::node(NodeId id) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) throw std::out_of_range("Network: unknown node");
  return *it->second;
}

ContactReport Network::contact(NodeId a, NodeId b, util::Time now,
                               util::Time duration,
                               double bandwidth_bytes_per_second) {
  BsubNode& na = node(a);
  BsubNode& nb = node(b);
  sim::Link link(duration, bandwidth_bytes_per_second);
  ContactReport report;

  struct Pending {
    NodeId to;
    std::vector<std::uint8_t> bytes;
  };
  std::deque<Pending> queue;
  for (auto& f : na.begin_contact(now)) queue.push_back({b, std::move(f)});
  for (auto& f : nb.begin_contact(now)) queue.push_back({a, std::move(f)});

  // Frame exchanges terminate naturally (data/genuine frames produce no
  // responses), but cap the rounds defensively.
  std::size_t safety = 100000;
  while (!queue.empty() && safety-- > 0) {
    Pending p = std::move(queue.front());
    queue.pop_front();
    if (!link.try_send(p.bytes.size())) {
      ++report.frames_dropped;
      continue;  // later (smaller) frames may still fit
    }
    ++report.frames_delivered;
    BsubNode& receiver = node(p.to);
    const NodeId other = (p.to == a) ? b : a;
    for (auto& response : receiver.handle(p.bytes, now)) {
      queue.push_back({other, std::move(response)});
    }
  }
  report.bytes_used = link.used_bytes();
  return report;
}

}  // namespace bsub::engine
