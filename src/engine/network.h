// In-memory network harness for live BsubNodes: executes byte-budgeted
// frame exchanges between pairs of nodes, exactly as a contact window would.
//
// The harness is transport-shaped: it moves opaque byte vectors between
// nodes and charges each against the contact's budget — nothing protocol-
// specific lives here, so swapping in a real socket transport only replaces
// this class.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "engine/node.h"
#include "sim/link.h"
#include "util/time.h"

namespace bsub::engine {

/// One completed consumer delivery observed by the harness.
struct DeliveryRecord {
  NodeId consumer = 0;
  std::uint64_t message_id = 0;
  std::string key;
  util::Time at = 0;
};

/// Outcome of one contact's frame exchange.
struct ContactReport {
  std::uint64_t bytes_used = 0;
  std::size_t frames_delivered = 0;
  std::size_t frames_dropped = 0;  ///< budget exhausted mid-exchange
};

class Network {
 public:
  explicit Network(NodeConfig node_config = {})
      : node_config_(node_config) {}

  /// Creates a node; ids must be unique.
  BsubNode& add_node(NodeId id);

  BsubNode& node(NodeId id);
  const BsubNode& node(NodeId id) const;
  std::size_t size() const { return nodes_.size(); }

  /// Runs the full frame exchange for one contact of the given duration and
  /// bandwidth. Frames are processed alternately (a's queue, then b's) and
  /// every frame's wire size is charged against the shared budget; once the
  /// budget runs out the remaining frames are lost.
  ContactReport contact(NodeId a, NodeId b, util::Time now,
                        util::Time duration,
                        double bandwidth_bytes_per_second =
                            sim::kDefaultBandwidthBytesPerSecond);

  /// Switches delivery recording to per-node logs (ids must be dense in
  /// [0, node_count)). Required before running contacts concurrently: each
  /// node's log is only written during that node's own contacts, so
  /// node-disjoint contacts never share a log. deliveries() then reports
  /// node-major order — a canonical order identical for serial and parallel
  /// runs — instead of global arrival order.
  void use_per_node_delivery_log(std::size_t node_count);

  /// All consumer deliveries seen so far: global arrival order by default,
  /// node-major (then per-node arrival) order in per-node-log mode.
  const std::vector<DeliveryRecord>& deliveries() const;

 private:
  NodeConfig node_config_;
  std::map<NodeId, std::unique_ptr<BsubNode>> nodes_;
  std::vector<DeliveryRecord> deliveries_;
  std::vector<std::vector<DeliveryRecord>> per_node_deliveries_;
  bool per_node_log_ = false;
  mutable std::vector<DeliveryRecord> flattened_;  ///< deliveries() cache
};

}  // namespace bsub::engine
