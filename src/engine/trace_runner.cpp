#include "engine/trace_runner.h"

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/protocol_registry.h"
#include "sim/event_stream.h"

namespace bsub::engine {

TraceRunner TraceRunner::from_protocol_spec(std::string_view protocol_spec,
                                            double bandwidth_bytes_per_second,
                                            TraceRunnerOptions options) {
  const core::BsubConfig cfg = core::bsub_config_from_spec(protocol_spec);
  if (cfg.adaptive_df) {
    throw util::ConfigError(
        "adaptive DF is not supported by the frame-driven engine",
        "B-SUB.adaptive", "use the simulator for adaptive-DF runs");
  }
  core::BrokerElection::Config election;
  election.lower = cfg.broker_lower;
  election.upper = cfg.broker_upper;
  election.window = cfg.election_window;
  election.reference_state = cfg.reference_node_state;
  return TraceRunner(node_config_from(cfg), election,
                     bandwidth_bytes_per_second, options);
}

TraceRunResults TraceRunner::run(trace::ContactStream& contacts,
                                 const workload::Workload& workload) {
  const std::size_t node_count = contacts.node_count();
  Network net(node_config_);
  core::BrokerElection election(node_count, election_config_);

  // Per-node delivery logs give a canonical node-major order shared by
  // serial and parallel runs (the default append-order log would make the
  // mean-delay float sum depend on the execution schedule).
  net.use_per_node_delivery_log(node_count);

  // Materialize nodes with their subscriptions.
  for (trace::NodeId n = 0; n < node_count; ++n) {
    BsubNode& node = net.add_node(n);
    for (workload::KeyId k : workload.interests_of(n)) {
      node.subscribe(workload.keys().name(k));
    }
  }

  const auto& messages = workload.messages();

  // Creation times of each message id, for delay computation. Prefilled so
  // the map is read-only while workers run.
  std::unordered_map<std::uint64_t, util::Time> created_at;
  created_at.reserve(messages.size());
  for (const workload::Message& m : messages) {
    created_at.emplace(m.id, m.created);
  }

  // Frame tallies commute (integer sums), so relaxed atomics keep them
  // schedule-independent.
  std::atomic<std::uint64_t> contacts_processed{0};
  std::atomic<std::uint64_t> frames_delivered{0};
  std::atomic<std::uint64_t> frames_dropped{0};
  std::atomic<std::uint64_t> bytes_used{0};

  auto exec_event = [&](const sim::ScenarioEvent& e) {
    if (e.is_message) {
      const workload::Message& m = messages[e.message_index];
      ContentMessage cm;
      cm.id = m.id;
      cm.key = workload.keys().name(m.key);
      cm.body.assign(m.size_bytes, 0x5A);
      cm.created = m.created;
      cm.ttl = m.ttl;
      net.node(m.producer).publish(std::move(cm), m.created);
      return;
    }
    const trace::Contact& c = e.contact;
    // Election decides roles, exactly as in the simulator protocol. It only
    // mutates the two endpoints' state, so it is safe inside a batch.
    election.on_contact(c.a, c.b, c.start);
    net.node(c.a).set_broker(election.is_broker(c.a));
    net.node(c.b).set_broker(election.is_broker(c.b));

    const ContactReport report =
        net.contact(c.a, c.b, c.start, c.duration(), bandwidth_);
    contacts_processed.fetch_add(1, std::memory_order_relaxed);
    frames_delivered.fetch_add(report.frames_delivered,
                               std::memory_order_relaxed);
    frames_dropped.fetch_add(report.frames_dropped,
                             std::memory_order_relaxed);
    bytes_used.fetch_add(report.bytes_used, std::memory_order_relaxed);
  };

  // Streamed replay: merge creations and contacts with the simulator's
  // exact tie rule, staging one scheduling window at a time.
  sim::ScenarioEventStream events(contacts, workload);
  std::vector<sim::ScenarioEvent> staged;

  sim::ParallelRunConfig pcfg;
  pcfg.threads = options_.threads;
  pcfg.window_events = options_.window_events;
  pcfg.min_batch_fanout = options_.min_batch_fanout;
  last_run_stats_ = sim::run_windowed_parallel(
      node_count,
      [&](std::span<sim::EventNodes> slots) {
        staged.resize(slots.size());
        std::size_t n = 0;
        while (n < slots.size() && events.next(staged[n])) {
          slots[n] = staged[n].nodes(messages);
          ++n;
        }
        return n;
      },
      [&](std::size_t j) { exec_event(staged[j]); }, pcfg);
  // An empty scenario never engaged the pool; report it as the serial run
  // it effectively was (matching the materialized executor's stats).
  if (last_run_stats_.events == 0) last_run_stats_.threads_used = 1;

  TraceRunResults results;
  results.contacts_processed = contacts_processed.load();
  results.frames_delivered = frames_delivered.load();
  results.frames_dropped = frames_dropped.load();
  results.bytes_used = bytes_used.load();

  // Summarize deliveries (nodes already deduplicate per consumer). The
  // node-major log order makes this float sum canonical.
  results.deliveries = net.deliveries().size();
  results.expected_deliveries = workload.expected_deliveries();
  if (results.expected_deliveries > 0) {
    results.delivery_ratio =
        static_cast<double>(results.deliveries) /
        static_cast<double>(results.expected_deliveries);
  }
  double delay_sum = 0.0;
  for (const DeliveryRecord& d : net.deliveries()) {
    delay_sum += util::to_minutes(d.at - created_at.at(d.message_id));
  }
  if (results.deliveries > 0) {
    results.mean_delay_minutes =
        delay_sum / static_cast<double>(results.deliveries);
  }
  return results;
}

}  // namespace bsub::engine
