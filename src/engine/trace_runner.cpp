#include "engine/trace_runner.h"

#include <unordered_map>

namespace bsub::engine {

TraceRunResults TraceRunner::run(const trace::ContactTrace& trace,
                                 const workload::Workload& workload) {
  Network net(node_config_);
  core::BrokerElection election(trace.node_count(), election_config_);

  // Materialize nodes with their subscriptions.
  for (trace::NodeId n = 0; n < trace.node_count(); ++n) {
    BsubNode& node = net.add_node(n);
    for (workload::KeyId k : workload.interests_of(n)) {
      node.subscribe(workload.keys().name(k));
    }
  }

  // Creation times of each message id, for delay computation.
  std::unordered_map<std::uint64_t, util::Time> created_at;

  // Two-way merge of message creations and contacts, as the simulator does.
  const auto& contacts = trace.contacts();
  const auto& messages = workload.messages();
  std::size_t ci = 0, mi = 0;
  TraceRunResults results;
  while (ci < contacts.size() || mi < messages.size()) {
    const bool take_message =
        mi < messages.size() &&
        (ci >= contacts.size() || messages[mi].created <= contacts[ci].start);
    if (take_message) {
      const workload::Message& m = messages[mi++];
      ContentMessage cm;
      cm.id = m.id;
      cm.key = workload.keys().name(m.key);
      cm.body.assign(m.size_bytes, 0x5A);
      cm.created = m.created;
      cm.ttl = m.ttl;
      created_at.emplace(cm.id, cm.created);
      net.node(m.producer).publish(std::move(cm), m.created);
      continue;
    }
    const trace::Contact& c = contacts[ci++];
    // Election decides roles, exactly as in the simulator protocol.
    election.on_contact(c.a, c.b, c.start);
    net.node(c.a).set_broker(election.is_broker(c.a));
    net.node(c.b).set_broker(election.is_broker(c.b));

    const ContactReport report =
        net.contact(c.a, c.b, c.start, c.duration(), bandwidth_);
    ++results.contacts_processed;
    results.frames_delivered += report.frames_delivered;
    results.frames_dropped += report.frames_dropped;
    results.bytes_used += report.bytes_used;
  }

  // Summarize deliveries (Network already deduplicates per consumer).
  results.deliveries = net.deliveries().size();
  results.expected_deliveries = workload.expected_deliveries();
  if (results.expected_deliveries > 0) {
    results.delivery_ratio =
        static_cast<double>(results.deliveries) /
        static_cast<double>(results.expected_deliveries);
  }
  double delay_sum = 0.0;
  for (const DeliveryRecord& d : net.deliveries()) {
    delay_sum += util::to_minutes(d.at - created_at.at(d.message_id));
  }
  if (results.deliveries > 0) {
    results.mean_delay_minutes =
        delay_sum / static_cast<double>(results.deliveries);
  }
  return results;
}

}  // namespace bsub::engine
