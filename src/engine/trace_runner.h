// Replays a contact trace + workload through the live frame-driven engine.
//
// This is the bridge between the two substrates: the same scenario that
// drives the strategy-object simulator (sim::Simulator + core::BsubProtocol)
// can be pushed through real BsubNodes exchanging encoded frames. Agreement
// between the two is a strong end-to-end correctness check — every filter
// crosses a codec boundary here.
//
// Differences vs the simulator model (kept deliberately):
//   - roles come from the same BrokerElection rules, evaluated inline;
//   - all transfers are real frames charged at wire size (the simulator
//     charges analytic sizes);
//   - messages carry real bodies of the workload's size.
//
// Like the simulator, the runner can shard one trace across cores through
// the windowed conflict-batch executor: a contact only touches its two
// endpoint BsubNodes (and their election state), so node-disjoint contacts
// commute. Delivery records go to per-node logs reduced node-major, and
// frame tallies are relaxed atomics, so serial and parallel runs return
// byte-identical TraceRunResults.
#pragma once

#include <string_view>

#include "core/broker_allocation.h"
#include "engine/network.h"
#include "metrics/collector.h"
#include "sim/parallel_executor.h"
#include "trace/contact_stream.h"
#include "trace/trace.h"
#include "workload/workload.h"

namespace bsub::engine {

struct TraceRunResults {
  std::uint64_t deliveries = 0;          ///< unique (message, consumer)
  std::uint64_t expected_deliveries = 0;
  double delivery_ratio = 0.0;
  double mean_delay_minutes = 0.0;
  std::uint64_t contacts_processed = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t bytes_used = 0;
};

/// Execution knobs; semantics are identical for every setting (see the
/// determinism contract above).
struct TraceRunnerOptions {
  /// 0 = util::default_thread_count() (honors BSUB_THREADS), 1 = serial.
  std::size_t threads = 0;
  std::size_t window_events = 4096;
  std::size_t min_batch_fanout = 4;
};

class TraceRunner {
 public:
  TraceRunner(NodeConfig node_config, core::BrokerElection::Config election,
              double bandwidth_bytes_per_second =
                  sim::kDefaultBandwidthBytesPerSecond,
              TraceRunnerOptions options = {})
      : node_config_(node_config), election_config_(election),
        bandwidth_(bandwidth_bytes_per_second), options_(options) {}

  /// Builds a runner from a B-SUB protocol spec (see
  /// core::bsub_config_from_spec): the shared constants map onto
  /// NodeConfig, bl/bu/window_ms onto the election config. Throws
  /// util::ConfigError for a non-B-SUB spec, a bad parameter, or
  /// adaptive=1 (the frame engine has no online DF estimator — failing
  /// loudly beats silently running a different protocol than asked).
  static TraceRunner from_protocol_spec(
      std::string_view protocol_spec,
      double bandwidth_bytes_per_second = sim::kDefaultBandwidthBytesPerSecond,
      TraceRunnerOptions options = {});

  /// Runs a streamed scenario; deterministic across thread counts and
  /// bit-identical to running the stream's materialization. Peak memory is
  /// O(node state + one scheduling window). Consumes the stream from its
  /// current position.
  TraceRunResults run(trace::ContactStream& contacts,
                      const workload::Workload& workload);

  /// Materialized-scenario convenience: adapts the trace to a stream.
  TraceRunResults run(const trace::ContactTrace& trace,
                      const workload::Workload& workload) {
    trace::MaterializedStream stream(trace);
    return run(stream, workload);
  }

  /// Execution-shape stats of the most recent run().
  const sim::ParallelRunStats& last_run_stats() const {
    return last_run_stats_;
  }

 private:
  NodeConfig node_config_;
  core::BrokerElection::Config election_config_;
  double bandwidth_;
  TraceRunnerOptions options_;
  sim::ParallelRunStats last_run_stats_;
};

}  // namespace bsub::engine
