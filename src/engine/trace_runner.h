// Replays a contact trace + workload through the live frame-driven engine.
//
// This is the bridge between the two substrates: the same scenario that
// drives the strategy-object simulator (sim::Simulator + core::BsubProtocol)
// can be pushed through real BsubNodes exchanging encoded frames. Agreement
// between the two is a strong end-to-end correctness check — every filter
// crosses a codec boundary here.
//
// Differences vs the simulator model (kept deliberately):
//   - roles come from the same BrokerElection rules, evaluated inline;
//   - all transfers are real frames charged at wire size (the simulator
//     charges analytic sizes);
//   - messages carry real bodies of the workload's size.
#pragma once

#include "core/broker_allocation.h"
#include "engine/network.h"
#include "metrics/collector.h"
#include "trace/trace.h"
#include "workload/workload.h"

namespace bsub::engine {

struct TraceRunResults {
  std::uint64_t deliveries = 0;          ///< unique (message, consumer)
  std::uint64_t expected_deliveries = 0;
  double delivery_ratio = 0.0;
  double mean_delay_minutes = 0.0;
  std::uint64_t contacts_processed = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t bytes_used = 0;
};

class TraceRunner {
 public:
  TraceRunner(NodeConfig node_config, core::BrokerElection::Config election,
              double bandwidth_bytes_per_second =
                  sim::kDefaultBandwidthBytesPerSecond)
      : node_config_(node_config), election_config_(election),
        bandwidth_(bandwidth_bytes_per_second) {}

  /// Runs the whole scenario; deterministic.
  TraceRunResults run(const trace::ContactTrace& trace,
                      const workload::Workload& workload);

 private:
  NodeConfig node_config_;
  core::BrokerElection::Config election_config_;
  double bandwidth_;
};

}  // namespace bsub::engine
