#include "engine/wire.h"

#include "bloom/tcbf_codec.h"
#include "util/byte_io.h"
#include "util/hash.h"

namespace bsub::engine {

namespace {

constexpr std::uint8_t kFrameMagic = 0x5B;  // '['
constexpr std::size_t kMaxBodyBytes = 1 << 20;
constexpr std::size_t kMaxKeyBytes = 4096;

/// Header: magic, type, payload length; trailer: FNV checksum of payload.
std::vector<std::uint8_t> seal(FrameType type,
                               const util::ByteWriter& payload) {
  util::ByteWriter out;
  out.put_u8(kFrameMagic);
  out.put_u8(static_cast<std::uint8_t>(type));
  out.put_varint(payload.size());
  out.put_bytes(payload.bytes());
  const std::string_view view(
      reinterpret_cast<const char*>(payload.bytes().data()), payload.size());
  out.put_u32(static_cast<std::uint32_t>(util::fnv1a64(view)));
  return out.bytes();
}

void put_message(util::ByteWriter& w, const ContentMessage& m) {
  w.put_u64(m.id);
  w.put_string(m.key);
  w.put_varint(m.body.size());
  w.put_bytes(m.body);
  w.put_u64(m.producer);
  w.put_u64(static_cast<std::uint64_t>(m.created));
  w.put_u64(static_cast<std::uint64_t>(m.ttl));
}

ContentMessage get_message(util::ByteReader& r) {
  ContentMessage m;
  m.id = r.get_u64();
  m.key = r.get_string();
  if (m.key.size() > kMaxKeyBytes) throw util::DecodeError("key too long");
  const std::uint64_t body_len = r.get_varint();
  if (body_len > kMaxBodyBytes) throw util::DecodeError("body too long");
  m.body.resize(body_len);
  for (auto& b : m.body) b = r.get_u8();
  m.producer = r.get_u64();
  m.created = static_cast<util::Time>(r.get_u64());
  m.ttl = static_cast<util::Time>(r.get_u64());
  return m;
}

void put_blob(util::ByteWriter& w, const std::vector<std::uint8_t>& blob) {
  w.put_varint(blob.size());
  w.put_bytes(blob);
}

std::vector<std::uint8_t> get_blob(util::ByteReader& r) {
  const std::uint64_t len = r.get_varint();
  if (len > kMaxBodyBytes) throw util::DecodeError("blob too long");
  std::vector<std::uint8_t> blob(len);
  for (auto& b : blob) b = r.get_u8();
  return blob;
}

}  // namespace

std::vector<std::uint8_t> encode(const HelloFrame& frame) {
  util::ByteWriter w;
  w.put_u64(frame.sender);
  w.put_u8(frame.is_broker ? 1 : 0);
  put_blob(w, bloom::encode_bloom(frame.interest_report));
  put_blob(w, bloom::encode_bloom(frame.relay_report));
  return seal(FrameType::kHello, w);
}

std::vector<std::uint8_t> encode(const GenuineFrame& frame) {
  util::ByteWriter w;
  w.put_u64(frame.sender);
  put_blob(w, bloom::encode_tcbf(frame.filter,
                                 bloom::CounterEncoding::kUniform));
  return seal(FrameType::kGenuineFilter, w);
}

std::vector<std::uint8_t> encode(const RelayFrame& frame) {
  util::ByteWriter w;
  w.put_u64(frame.sender);
  put_blob(w, bloom::encode_tcbf(frame.filter, bloom::CounterEncoding::kFull));
  return seal(FrameType::kRelayFilter, w);
}

std::vector<std::uint8_t> encode(const DataFrame& frame) {
  util::ByteWriter w;
  w.put_u64(frame.sender);
  put_message(w, frame.message);
  w.put_u8(frame.custody ? 1 : 0);
  return seal(FrameType::kData, w);
}

std::vector<std::uint8_t> encode(const CustodyAckFrame& frame) {
  util::ByteWriter w;
  w.put_u64(frame.sender);
  w.put_u64(frame.message_id);
  w.put_u8(frame.accepted ? 1 : 0);
  return seal(FrameType::kCustodyAck, w);
}

Frame decode(std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  if (r.get_u8() != kFrameMagic) throw util::DecodeError("bad frame magic");
  const auto type = static_cast<FrameType>(r.get_u8());
  const std::uint64_t payload_len = r.get_varint();
  if (payload_len > r.remaining()) {
    throw util::DecodeError("frame payload truncated");
  }

  // Slice the payload, verify the trailing checksum, then parse.
  std::vector<std::uint8_t> payload(payload_len);
  for (auto& b : payload) b = r.get_u8();
  const std::uint32_t declared = r.get_u32();
  const std::string_view view(reinterpret_cast<const char*>(payload.data()),
                              payload.size());
  if (declared != static_cast<std::uint32_t>(util::fnv1a64(view))) {
    throw util::DecodeError("frame checksum mismatch");
  }

  util::ByteReader p(payload);
  Frame frame;
  frame.type = type;
  switch (type) {
    case FrameType::kHello: {
      HelloFrame h;
      h.sender = p.get_u64();
      h.is_broker = p.get_u8() != 0;
      h.interest_report = bloom::decode_bloom(get_blob(p));
      h.relay_report = bloom::decode_bloom(get_blob(p));
      frame.hello = std::move(h);
      break;
    }
    case FrameType::kGenuineFilter: {
      GenuineFrame g{p.get_u64(), bloom::decode_tcbf(get_blob(p))};
      frame.genuine = std::move(g);
      break;
    }
    case FrameType::kRelayFilter: {
      RelayFrame rf{p.get_u64(), bloom::decode_tcbf(get_blob(p))};
      frame.relay = std::move(rf);
      break;
    }
    case FrameType::kData: {
      DataFrame d;
      d.sender = p.get_u64();
      d.message = get_message(p);
      d.custody = p.get_u8() != 0;
      frame.data = std::move(d);
      break;
    }
    case FrameType::kCustodyAck: {
      CustodyAckFrame a;
      a.sender = p.get_u64();
      a.message_id = p.get_u64();
      a.accepted = p.get_u8() != 0;
      frame.custody_ack = a;
      break;
    }
    default:
      throw util::DecodeError("unknown frame type");
  }
  return frame;
}

}  // namespace bsub::engine
