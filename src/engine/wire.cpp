#include "engine/wire.h"

#include "bloom/tcbf_codec.h"
#include "util/byte_io.h"
#include "util/hash.h"

namespace bsub::engine {

namespace {

constexpr std::size_t kMaxBodyBytes = 1 << 20;
constexpr std::size_t kMaxKeyBytes = 4096;
// Generous bound on a whole frame payload (body + two filter blobs + slack):
// reject absurd length claims before any allocation sized from them.
constexpr std::size_t kMaxPayloadBytes = 4u << 20;

/// Header: magic, version, type, payload length; trailer: FNV checksum of
/// payload. Fills `out` (cleared, capacity reused).
void seal_into(FrameType type, const util::ByteWriter& payload,
               std::vector<std::uint8_t>& out) {
  util::ByteWriter w(std::move(out));
  w.put_u8(kFrameMagic);
  w.put_u8(kWireVersion);
  w.put_u8(static_cast<std::uint8_t>(type));
  w.put_varint(payload.size());
  w.put_bytes(payload.bytes());
  const std::string_view view(
      reinterpret_cast<const char*>(payload.bytes().data()), payload.size());
  w.put_u32(static_cast<std::uint32_t>(util::fnv1a64(view)));
  out = std::move(w).take();
}

/// Payload assembly scratch: one writer buffer per thread (frame encoders
/// never nest, so a single buffer suffices).
std::vector<std::uint8_t>& payload_scratch() {
  thread_local std::vector<std::uint8_t> buf;
  return buf;
}

/// Scratch for embedded filter blobs.
std::vector<std::uint8_t>& blob_scratch() {
  thread_local std::vector<std::uint8_t> buf;
  return buf;
}

void put_bloom_blob(util::ByteWriter& w, const bloom::BloomFilter& bf) {
  auto& blob = blob_scratch();
  bloom::encode_bloom_into(bf, blob);
  w.put_varint(blob.size());
  w.put_bytes(blob);
}

void put_tcbf_blob(util::ByteWriter& w, const bloom::Tcbf& filter,
                   bloom::CounterEncoding encoding) {
  auto& blob = blob_scratch();
  bloom::encode_tcbf_into(filter, encoding, blob);
  w.put_varint(blob.size());
  w.put_bytes(blob);
}

void put_message(util::ByteWriter& w, const ContentMessage& m) {
  w.put_u64(m.id);
  w.put_string(m.key);
  w.put_varint(m.body.size());
  w.put_bytes(m.body);
  w.put_u64(m.producer);
  w.put_u64(static_cast<std::uint64_t>(m.created));
  w.put_u64(static_cast<std::uint64_t>(m.ttl));
}

/// Reads a u64 that must be a valid non-negative util::Time.
util::Time get_time(util::ByteReader& r, const char* what) {
  const std::size_t at = r.offset();
  const std::uint64_t raw = r.get_u64();
  if (raw > static_cast<std::uint64_t>(util::kTimeMax)) {
    throw util::CodecError(std::string("bad ") + what, at,
                           "non-negative time below 2^63",
                           std::to_string(raw));
  }
  return static_cast<util::Time>(raw);
}

ContentMessage get_message(util::ByteReader& r) {
  ContentMessage m;
  m.id = r.get_u64();
  const std::size_t key_at = r.offset();
  m.key = r.get_string();
  if (m.key.size() > kMaxKeyBytes) {
    throw util::CodecError("key too long", key_at,
                           "at most " + std::to_string(kMaxKeyBytes) +
                               " bytes",
                           std::to_string(m.key.size()));
  }
  const std::size_t body_at = r.offset();
  const std::uint64_t body_len = r.get_varint();
  if (body_len > kMaxBodyBytes) {
    throw util::CodecError("body too long", body_at,
                           "at most " + std::to_string(kMaxBodyBytes) +
                               " bytes",
                           std::to_string(body_len));
  }
  const auto body = r.get_span(static_cast<std::size_t>(body_len));
  m.body.assign(body.begin(), body.end());
  m.producer = r.get_u64();
  m.created = get_time(r, "message creation time");
  m.ttl = get_time(r, "message TTL");
  if (m.created > util::kTimeMax - m.ttl) {
    throw util::CodecError("message expiry overflows", r.offset(),
                           "created + ttl below 2^63", {});
  }
  return m;
}

std::span<const std::uint8_t> get_blob(util::ByteReader& r) {
  const std::size_t at = r.offset();
  const std::uint64_t len = r.get_varint();
  if (len > kMaxBodyBytes) {
    throw util::CodecError("blob too long", at,
                           "at most " + std::to_string(kMaxBodyBytes) +
                               " bytes",
                           std::to_string(len));
  }
  return r.get_span(static_cast<std::size_t>(len));
}

}  // namespace

std::vector<std::uint8_t> encode(const HelloFrame& frame) {
  std::vector<std::uint8_t> out;
  encode_into(frame, out);
  return out;
}

std::vector<std::uint8_t> encode(const GenuineFrame& frame) {
  std::vector<std::uint8_t> out;
  encode_into(frame, out);
  return out;
}

std::vector<std::uint8_t> encode(const RelayFrame& frame) {
  std::vector<std::uint8_t> out;
  encode_into(frame, out);
  return out;
}

std::vector<std::uint8_t> encode(const DataFrame& frame) {
  std::vector<std::uint8_t> out;
  encode_into(frame, out);
  return out;
}

std::vector<std::uint8_t> encode(const CustodyAckFrame& frame) {
  std::vector<std::uint8_t> out;
  encode_into(frame, out);
  return out;
}

void encode_into(const HelloFrame& frame, std::vector<std::uint8_t>& out) {
  util::ByteWriter w(std::move(payload_scratch()));
  w.put_u64(frame.sender);
  w.put_u8(frame.is_broker ? 1 : 0);
  put_bloom_blob(w, frame.interest_report);
  put_bloom_blob(w, frame.relay_report);
  seal_into(FrameType::kHello, w, out);
  payload_scratch() = std::move(w).take();
}

void encode_into(const GenuineFrame& frame, std::vector<std::uint8_t>& out) {
  util::ByteWriter w(std::move(payload_scratch()));
  w.put_u64(frame.sender);
  put_tcbf_blob(w, frame.filter, bloom::CounterEncoding::kUniform);
  seal_into(FrameType::kGenuineFilter, w, out);
  payload_scratch() = std::move(w).take();
}

void encode_into(const RelayFrame& frame, std::vector<std::uint8_t>& out) {
  util::ByteWriter w(std::move(payload_scratch()));
  w.put_u64(frame.sender);
  put_tcbf_blob(w, frame.filter, bloom::CounterEncoding::kFull);
  seal_into(FrameType::kRelayFilter, w, out);
  payload_scratch() = std::move(w).take();
}

void encode_into(const DataFrame& frame, std::vector<std::uint8_t>& out) {
  util::ByteWriter w(std::move(payload_scratch()));
  w.put_u64(frame.sender);
  put_message(w, frame.message);
  w.put_u8(frame.custody ? 1 : 0);
  seal_into(FrameType::kData, w, out);
  payload_scratch() = std::move(w).take();
}

void encode_into(const CustodyAckFrame& frame, std::vector<std::uint8_t>& out) {
  util::ByteWriter w(std::move(payload_scratch()));
  w.put_u64(frame.sender);
  w.put_u64(frame.message_id);
  w.put_u8(frame.accepted ? 1 : 0);
  seal_into(FrameType::kCustodyAck, w, out);
  payload_scratch() = std::move(w).take();
}

const std::vector<std::uint8_t>& encode_hello_cached(
    NodeId sender, bool is_broker, const bloom::BloomFilter& interest_report,
    const bloom::BloomFilter& relay_report, FrameCache& cache) {
  if (cache.epoch == interest_report.epoch() &&
      cache.epoch2 == relay_report.epoch() && cache.broker == is_broker) {
    ++cache.hits;
    return cache.bytes;
  }
  ++cache.misses;
  util::ByteWriter w(std::move(payload_scratch()));
  w.put_u64(sender);
  w.put_u8(is_broker ? 1 : 0);
  put_bloom_blob(w, interest_report);
  put_bloom_blob(w, relay_report);
  seal_into(FrameType::kHello, w, cache.bytes);
  payload_scratch() = std::move(w).take();
  cache.epoch = interest_report.epoch();
  cache.epoch2 = relay_report.epoch();
  cache.broker = is_broker;
  return cache.bytes;
}

const std::vector<std::uint8_t>& encode_genuine_cached(NodeId sender,
                                                       const bloom::Tcbf& filter,
                                                       FrameCache& cache) {
  if (cache.epoch == filter.epoch()) {
    ++cache.hits;
    return cache.bytes;
  }
  ++cache.misses;
  util::ByteWriter w(std::move(payload_scratch()));
  w.put_u64(sender);
  put_tcbf_blob(w, filter, bloom::CounterEncoding::kUniform);
  seal_into(FrameType::kGenuineFilter, w, cache.bytes);
  payload_scratch() = std::move(w).take();
  cache.epoch = filter.epoch();
  return cache.bytes;
}

const std::vector<std::uint8_t>& encode_relay_cached(NodeId sender,
                                                     const bloom::Tcbf& filter,
                                                     FrameCache& cache) {
  if (cache.epoch == filter.epoch()) {
    ++cache.hits;
    return cache.bytes;
  }
  ++cache.misses;
  util::ByteWriter w(std::move(payload_scratch()));
  w.put_u64(sender);
  put_tcbf_blob(w, filter, bloom::CounterEncoding::kFull);
  seal_into(FrameType::kRelayFilter, w, cache.bytes);
  payload_scratch() = std::move(w).take();
  cache.epoch = filter.epoch();
  return cache.bytes;
}

Frame decode(std::span<const std::uint8_t> bytes) {
  util::ByteReader r(bytes);
  if (r.get_u8() != kFrameMagic) {
    throw util::CodecError("bad frame magic", 0, "0x5B", {});
  }
  const std::uint8_t version = r.get_u8();
  if (version != kWireVersion) {
    throw util::CodecError("unsupported wire version", 1,
                           std::to_string(kWireVersion),
                           std::to_string(version));
  }
  const std::uint8_t type_byte = r.get_u8();
  if (type_byte < static_cast<std::uint8_t>(FrameType::kHello) ||
      type_byte > static_cast<std::uint8_t>(FrameType::kCustodyAck)) {
    throw util::CodecError("unknown frame type", 2, "type in [1, 5]",
                           std::to_string(type_byte));
  }
  const auto type = static_cast<FrameType>(type_byte);
  const std::size_t len_at = r.offset();
  const std::uint64_t payload_len = r.get_varint();
  if (payload_len > kMaxPayloadBytes) {
    throw util::CodecError("frame payload too long", len_at,
                           "at most " + std::to_string(kMaxPayloadBytes) +
                               " bytes",
                           std::to_string(payload_len));
  }
  if (payload_len > r.remaining()) {
    throw util::CodecError("frame payload truncated", r.offset(),
                           std::to_string(payload_len) + " payload bytes",
                           std::to_string(r.remaining()));
  }

  // Slice the payload (zero-copy), verify the trailing checksum, then parse.
  const auto payload = r.get_span(static_cast<std::size_t>(payload_len));
  const std::uint32_t declared = r.get_u32();
  const std::string_view view(reinterpret_cast<const char*>(payload.data()),
                              payload.size());
  if (declared != static_cast<std::uint32_t>(util::fnv1a64(view))) {
    throw util::CodecError("frame checksum mismatch");
  }
  // A frame is a complete unit: callers hand decode() exactly one frame, so
  // bytes past the checksum mean a framing bug or tampering.
  r.expect_end("frame");

  util::ByteReader p(payload);
  Frame frame;
  frame.type = type;
  switch (type) {
    case FrameType::kHello: {
      HelloFrame h;
      h.sender = p.get_u64();
      h.is_broker = p.get_u8() != 0;
      h.interest_report = bloom::decode_bloom(get_blob(p));
      h.relay_report = bloom::decode_bloom(get_blob(p));
      frame.hello = std::move(h);
      break;
    }
    case FrameType::kGenuineFilter: {
      GenuineFrame g{p.get_u64(), bloom::decode_tcbf(get_blob(p))};
      frame.genuine = std::move(g);
      break;
    }
    case FrameType::kRelayFilter: {
      RelayFrame rf{p.get_u64(), bloom::decode_tcbf(get_blob(p))};
      frame.relay = std::move(rf);
      break;
    }
    case FrameType::kData: {
      DataFrame d;
      d.sender = p.get_u64();
      d.message = get_message(p);
      d.custody = p.get_u8() != 0;
      frame.data = std::move(d);
      break;
    }
    case FrameType::kCustodyAck: {
      CustodyAckFrame a;
      a.sender = p.get_u64();
      a.message_id = p.get_u64();
      a.accepted = p.get_u8() != 0;
      frame.custody_ack = a;
      break;
    }
  }
  p.expect_end("frame payload");
  return frame;
}

}  // namespace bsub::engine
